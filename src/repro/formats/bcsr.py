"""BCSR (Blocked CSR) -- the classic register-blocking format.

Listed by the paper (Section III-A) among the CSR alternatives that
reduce index storage by exploiting structure: nonzeros are grouped into
dense ``r x c`` blocks aligned to a block grid, and only one column
index is stored *per block*.  Zeros inside a partially filled block are
stored explicitly ("fill"), so BCSR trades value storage for index
storage -- the opposite direction of CSR-VI, and a useful ablation
contrast: for matrices without dense block structure the fill explodes
and compression backfires.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix, Storage, register_format
from repro.formats.csr import CSRMatrix
from repro.util.validation import as_index_array, check_monotone


@register_format
class BCSRMatrix(SparseMatrix):
    """Blocked CSR with fixed ``r x c`` blocks.

    ``brow_ptr`` (block-row offsets), ``bcol_ind`` (block-column index
    per block) and ``block_values`` (``nblocks x r x c`` dense blocks).
    """

    name = "bcsr"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        r: int,
        c: int,
        brow_ptr,
        bcol_ind,
        block_values,
    ):
        super().__init__(nrows, ncols)
        if r < 1 or c < 1:
            raise FormatError(f"block shape ({r}, {c}) must be positive")
        self.r, self.c = int(r), int(c)
        brow_ptr = as_index_array(brow_ptr, "brow_ptr")
        bcol_ind = as_index_array(bcol_ind, "bcol_ind")
        block_values = np.ascontiguousarray(block_values, dtype=np.float64)
        nbrows = -(-nrows // r)  # ceil division
        if brow_ptr.size != nbrows + 1:
            raise FormatError(
                f"brow_ptr has {brow_ptr.size} entries, expected {nbrows + 1}"
            )
        check_monotone(brow_ptr, "brow_ptr")
        if block_values.ndim != 3 or block_values.shape[1:] != (r, c):
            raise FormatError(
                f"block_values must be (nblocks, {r}, {c}), got {block_values.shape}"
            )
        if bcol_ind.size != block_values.shape[0]:
            raise FormatError("bcol_ind and block_values length mismatch")
        if brow_ptr.size and int(brow_ptr[-1]) != bcol_ind.size:
            raise FormatError("brow_ptr must run to the number of blocks")
        nbcols = -(-ncols // c)
        if bcol_ind.size and int(bcol_ind.max()) >= nbcols:
            raise FormatError("bcol_ind out of block-column range")
        self.brow_ptr = brow_ptr
        self.bcol_ind = bcol_ind
        self.block_values = block_values
        # True (pre-fill) nonzero count, needed for honest fill accounting.
        self._true_nnz = int(np.count_nonzero(block_values))

    @property
    def nnz(self) -> int:
        """Explicitly stored entries including fill zeros."""
        return self.block_values.shape[0] * self.r * self.c

    @property
    def true_nnz(self) -> int:
        """Original nonzeros (excluding fill)."""
        return self._true_nnz

    @property
    def fill_ratio(self) -> float:
        """Stored entries / original nonzeros (1.0 means no fill)."""
        return self.nnz / self.true_nnz if self.true_nnz else 0.0

    def storage(self) -> Storage:
        return Storage(
            index_bytes=self.brow_ptr.nbytes + self.bcol_ind.nbytes,
            value_bytes=self.block_values.nbytes,
        )

    def iter_entries(self) -> Iterator[tuple[int, int, float]]:
        nbrows = self.brow_ptr.size - 1
        for brow in range(nbrows):
            # Collect the block row's entries, then emit in column order.
            entries: list[tuple[int, int, float]] = []
            for b in range(int(self.brow_ptr[brow]), int(self.brow_ptr[brow + 1])):
                bcol = int(self.bcol_ind[b])
                block = self.block_values[b]
                for i in range(self.r):
                    for j in range(self.c):
                        v = float(block[i, j])
                        if v != 0.0:
                            entries.append((brow * self.r + i, bcol * self.c + j, v))
            entries.sort()
            yield from entries

    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise FormatError(f"x has shape {x.shape}, expected ({self.ncols},)")
        # Pad x to a whole number of blocks, gather per-block slices,
        # batched matvec over all blocks, scatter-add into block rows.
        nbcols = -(-self.ncols // self.c)
        xp = np.zeros(nbcols * self.c, dtype=np.float64)
        xp[: self.ncols] = x
        xblocks = xp.reshape(nbcols, self.c)[self.bcol_ind]  # (nblocks, c)
        contrib = np.einsum("bij,bj->bi", self.block_values, xblocks)  # (nblocks, r)
        nbrows = self.brow_ptr.size - 1
        blens = np.diff(self.brow_ptr.astype(np.int64))
        brow_of = np.repeat(np.arange(nbrows), blens)
        ypad = np.zeros((nbrows, self.r), dtype=np.float64)
        np.add.at(ypad, brow_of, contrib)
        y = ypad.reshape(-1)[: self.nrows]
        if out is not None:
            out[:] = y
            return out
        return y

    @classmethod
    def from_csr(cls, csr: CSRMatrix, r: int = 2, c: int = 2) -> "BCSRMatrix":
        """Block a CSR matrix on an aligned ``r x c`` grid (with fill)."""
        if r < 1 or c < 1:
            raise FormatError(f"block shape ({r}, {c}) must be positive")
        rows = csr.row_of_entry()
        cols = csr.col_ind.astype(np.int64)
        brows = rows // r
        bcols = cols // c
        nbrows = -(-csr.nrows // r)
        # Unique (brow, bcol) pairs in block-row-major order.
        key = brows * (-(-csr.ncols // c)) + bcols
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        uniq_mask = np.ones(key_sorted.size, dtype=bool)
        uniq_mask[1:] = key_sorted[1:] != key_sorted[:-1]
        block_of_entry = np.cumsum(uniq_mask) - 1  # in sorted order
        nblocks = int(block_of_entry[-1]) + 1 if key_sorted.size else 0
        block_values = np.zeros((nblocks, r, c), dtype=np.float64)
        e_rows = rows[order] % r
        e_cols = cols[order] % c
        block_values[block_of_entry, e_rows, e_cols] = csr.values[order]
        ubrow = (key_sorted[uniq_mask] // (-(-csr.ncols // c))).astype(np.int64)
        ubcol = (key_sorted[uniq_mask] % (-(-csr.ncols // c))).astype(np.int64)
        counts = np.bincount(ubrow, minlength=nbrows) if nblocks else np.zeros(
            nbrows, dtype=np.int64
        )
        brow_ptr = np.zeros(nbrows + 1, dtype=np.int64)
        np.cumsum(counts, out=brow_ptr[1:])
        return cls(
            csr.nrows,
            csr.ncols,
            r,
            c,
            brow_ptr.astype(np.int32),
            ubcol.astype(np.int32),
            block_values,
        )

    def to_csr(self) -> CSRMatrix:
        rows, cols, vals = [], [], []
        for i, j, v in self.iter_entries():
            rows.append(i)
            cols.append(j)
            vals.append(v)
        from repro.formats.coo import COOMatrix

        coo = COOMatrix(
            self.nrows,
            self.ncols,
            np.asarray(rows, dtype=np.int32),
            np.asarray(cols, dtype=np.int32),
            np.asarray(vals, dtype=np.float64),
        )
        return CSRMatrix.from_coo(coo)
