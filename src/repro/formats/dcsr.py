"""DCSR: the Willcock & Lumsdaine delta-compression baseline [19].

The paper's related-work comparison (Section III-B) is against DCSR,
which encodes the matrix as a stream of *six command codes* for
primitive sub-operations, each followed by its operands.  Our encoding
keeps that fine-grained byte-oriented character (that is what produces
the frequent hard-to-predict dispatch branches the paper criticizes --
and what the machine model charges a per-command branch penalty for):

====  =========  =============================================
code  operands   meaning
====  =========  =============================================
0     --         NEWROW: advance one row, reset column to 0
1     varint     ROWJMP: advance ``1 + varint`` rows (empty rows)
2     u8         DELTA8: one element, 1-byte column delta
3     u16        DELTA16: one element, 2-byte column delta
4     u32        DELTA32: one element, 4-byte column delta
5     u8, u8*n   RUN8: ``n`` elements with 1-byte deltas each
====  =========  =============================================

DELTA* deltas are the distance from the previous column (from column 0
at a row start), exactly as in CSR-DU; RUN8 amortizes the command byte
over a run of small deltas (the "unrolling" flavor of [19] that groups
frequent sub-operation instances).

The comparison the benchmarks draw: DCSR compresses about as well as
CSR-DU (sometimes slightly better -- no 1-byte ``usize`` per unit), but
pays a dispatch branch per *command* instead of per *unit*, which the
cost model turns into the performance gap Section III-B describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator

import numpy as np

from repro.errors import EncodingError, FormatError
from repro.formats.base import SparseMatrix, Storage, register_format
from repro.formats.csr import CSRMatrix
from repro.nputil.segops import segmented_reduce
from repro.util.bitops import decode_varint, encode_varint
from repro.util.validation import as_value_array

CMD_NEWROW = 0
CMD_ROWJMP = 1
CMD_DELTA8 = 2
CMD_DELTA16 = 3
CMD_DELTA32 = 4
CMD_RUN8 = 5

#: Minimum run length for which RUN8 beats individual DELTA8 commands
#: (RUN8 costs 2 + n bytes; n DELTA8 commands cost 2n bytes).
MIN_RUN = 3

MAX_RUN = 255


@dataclass(frozen=True)
class DecodedDCSR:
    """Structure-of-arrays decode of a DCSR stream (cached per matrix).

    ``command_count`` drives the cost model's branch accounting.
    """

    row_ptr: np.ndarray
    columns: np.ndarray
    command_count: int
    run_count: int


def encode_dcsr(row_ptr: np.ndarray, col_ind: np.ndarray) -> bytes:
    """Encode CSR structure into a DCSR command stream."""
    out = bytearray()
    row_ptr = np.asarray(row_ptr, dtype=np.int64)
    col_ind = np.asarray(col_ind, dtype=np.int64)
    pending_rows = 0
    for row in range(row_ptr.size - 1):
        start, stop = int(row_ptr[row]), int(row_ptr[row + 1])
        if start == stop:
            pending_rows += 1
            continue
        if pending_rows == 0:
            out.append(CMD_NEWROW)
        else:
            out.append(CMD_ROWJMP)
            encode_varint(pending_rows, out)
        pending_rows = 0
        cols = col_ind[start:stop]
        deltas = np.empty(cols.size, dtype=np.int64)
        deltas[0] = cols[0]
        np.subtract(cols[1:], cols[:-1], out=deltas[1:])
        if deltas.size > 1 and int(deltas[1:].min()) <= 0:
            raise EncodingError("row columns must be strictly increasing")
        small = deltas < 256
        k = 0
        n = deltas.size
        while k < n:
            if small[k]:
                run_end = k
                while run_end < n and small[run_end] and run_end - k < MAX_RUN:
                    run_end += 1
                length = run_end - k
                if length >= MIN_RUN:
                    out.append(CMD_RUN8)
                    out.append(length)
                    out += deltas[k:run_end].astype(np.uint8).tobytes()
                    k = run_end
                    continue
                out.append(CMD_DELTA8)
                out.append(int(deltas[k]))
                k += 1
            elif deltas[k] < 1 << 16:
                out.append(CMD_DELTA16)
                out += int(deltas[k]).to_bytes(2, "little")
                k += 1
            elif deltas[k] < 1 << 32:
                out.append(CMD_DELTA32)
                out += int(deltas[k]).to_bytes(4, "little")
                k += 1
            else:
                raise EncodingError(f"delta {int(deltas[k])} exceeds 32 bits")
    return bytes(out)


def decode_dcsr(stream: bytes, nrows: int, nnz: int) -> DecodedDCSR:
    """Decode a DCSR command stream back to CSR structure."""
    cols: list[int] = []
    row_counts = np.zeros(nrows, dtype=np.int64)
    row = -1
    col = 0
    pos = 0
    n = len(stream)
    commands = 0
    runs = 0
    count_in_row = 0

    def flush_row() -> None:
        if row >= 0:
            row_counts[row] = count_in_row

    while pos < n:
        cmd = stream[pos]
        pos += 1
        commands += 1
        if cmd in (CMD_NEWROW, CMD_ROWJMP):
            flush_row()
            jump = 1
            if cmd == CMD_ROWJMP:
                extra, pos = decode_varint(stream, pos)
                jump += extra
            row += jump
            if row >= nrows:
                raise EncodingError(f"DCSR stream reaches row {row} >= nrows {nrows}")
            col = 0
            count_in_row = 0
        elif cmd == CMD_DELTA8:
            if pos >= n:
                raise EncodingError("truncated DELTA8")
            col += stream[pos]
            pos += 1
            cols.append(col)
            count_in_row += 1
        elif cmd == CMD_DELTA16:
            if pos + 2 > n:
                raise EncodingError("truncated DELTA16")
            col += int.from_bytes(stream[pos : pos + 2], "little")
            pos += 2
            cols.append(col)
            count_in_row += 1
        elif cmd == CMD_DELTA32:
            if pos + 4 > n:
                raise EncodingError("truncated DELTA32")
            col += int.from_bytes(stream[pos : pos + 4], "little")
            pos += 4
            cols.append(col)
            count_in_row += 1
        elif cmd == CMD_RUN8:
            if pos >= n:
                raise EncodingError("truncated RUN8 header")
            length = stream[pos]
            pos += 1
            if length == 0:
                raise EncodingError("RUN8 with zero length is invalid")
            if pos + length > n:
                raise EncodingError("truncated RUN8 body")
            deltas = np.frombuffer(stream, dtype=np.uint8, count=length, offset=pos)
            pos += length
            run_cols = col + np.cumsum(deltas.astype(np.int64))
            col = int(run_cols[-1])
            cols.extend(run_cols.tolist())
            count_in_row += length
            runs += 1
        else:
            raise EncodingError(f"unknown DCSR command {cmd}")
    flush_row()
    if len(cols) != nnz:
        raise EncodingError(f"DCSR stream decodes {len(cols)} nonzeros, expected {nnz}")
    row_ptr = np.zeros(nrows + 1, dtype=np.int64)
    np.cumsum(row_counts, out=row_ptr[1:])
    return DecodedDCSR(
        row_ptr=row_ptr,
        columns=np.asarray(cols, dtype=np.int64),
        command_count=commands,
        run_count=runs,
    )


@register_format
class DCSRMatrix(SparseMatrix):
    """Delta-Compressed Sparse Row matrix (baseline from [19])."""

    name = "dcsr"

    def __init__(self, nrows: int, ncols: int, stream: bytes, values):
        super().__init__(nrows, ncols)
        if not isinstance(stream, (bytes, bytearray)):
            raise FormatError(f"stream must be bytes, got {type(stream).__name__}")
        self.stream = bytes(stream)
        self.values = as_value_array(values, "values")

    @cached_property
    def decoded(self) -> DecodedDCSR:
        dec = decode_dcsr(self.stream, self.nrows, self.values.size)
        if dec.columns.size and int(dec.columns.max()) >= self.ncols:
            raise FormatError("DCSR stream reaches a column beyond ncols")
        return dec

    @property
    def nnz(self) -> int:
        return self.values.size

    @property
    def command_count(self) -> int:
        """Commands in the stream -- each is a dispatch branch at run time."""
        return self.decoded.command_count

    def storage(self) -> Storage:
        return Storage(index_bytes=len(self.stream), value_bytes=self.values.nbytes)

    def iter_entries(self) -> Iterator[tuple[int, int, float]]:
        dec = self.decoded
        rows = np.repeat(
            np.arange(self.nrows), np.diff(dec.row_ptr).astype(np.int64)
        )
        for i, j, v in zip(rows.tolist(), dec.columns.tolist(), self.values.tolist()):
            yield i, j, v

    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise FormatError(f"x has shape {x.shape}, expected ({self.ncols},)")
        dec = self.decoded
        products = self.values * x[dec.columns]
        y = segmented_reduce(products, dec.row_ptr)
        if out is not None:
            out[:] = y
            return out
        return y

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "DCSRMatrix":
        stream = encode_dcsr(csr.row_ptr, csr.col_ind)
        return cls(csr.nrows, csr.ncols, stream, csr.values)

    def to_csr(self) -> CSRMatrix:
        dec = self.decoded
        return CSRMatrix(
            self.nrows,
            self.ncols,
            dec.row_ptr.astype(np.int32),
            dec.columns.astype(np.int32),
            self.values,
        )
