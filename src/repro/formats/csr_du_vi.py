"""CSR-DU-VI: both compressions at once.

The companion paper (Kourtis et al., CF'08 [8]) combines the delta-unit
index stream with value indexing; ICPP'08 evaluates them separately but
builds directly on that work.  This format is the ABL-5 ablation
subject: it shows whether the two reductions compose (they do -- index
and value bytes are independent) and where the extra per-element
indirection stops paying off.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterator

import numpy as np

from repro.compress.ctl import DecodedUnits, decode_units
from repro.compress.delta import MAX_UNIT_SIZE
from repro.compress.unique import unique_index_values
from repro.errors import FormatError
from repro.formats.base import SparseMatrix, Storage, register_format
from repro.formats.csr import CSRMatrix
from repro.formats.csr_du import CSRDUMatrix
from repro.util.validation import as_value_array


@register_format
class CSRDUVIMatrix(SparseMatrix):
    """Delta-unit index stream + value-indexed numerical data."""

    name = "csr-du-vi"

    def __init__(self, nrows: int, ncols: int, ctl: bytes, vals_unique, val_ind):
        super().__init__(nrows, ncols)
        if not isinstance(ctl, (bytes, bytearray)):
            raise FormatError(f"ctl must be bytes, got {type(ctl).__name__}")
        self.ctl = bytes(ctl)
        self.vals_unique = as_value_array(vals_unique, "vals_unique")
        val_ind = np.asarray(val_ind)
        if val_ind.ndim != 1 or not np.issubdtype(val_ind.dtype, np.unsignedinteger):
            raise FormatError("val_ind must be a 1-D unsigned integer array")
        if val_ind.size and int(val_ind.max()) >= self.vals_unique.size:
            raise FormatError("val_ind out of range of vals_unique")
        self.val_ind = val_ind

    @cached_property
    def units(self) -> DecodedUnits:
        return decode_units(self.ctl, self.val_ind.size)

    @property
    def nnz(self) -> int:
        return self.val_ind.size

    @property
    def ttu(self) -> float:
        return self.nnz / self.vals_unique.size if self.vals_unique.size else 0.0

    def storage(self) -> Storage:
        return Storage(
            index_bytes=len(self.ctl),
            value_bytes=self.vals_unique.nbytes + self.val_ind.nbytes,
        )

    def iter_entries(self) -> Iterator[tuple[int, int, float]]:
        du = self.units
        rows = np.repeat(du.rows, du.sizes)
        values = self.vals_unique[self.val_ind]
        for i, j, v in zip(rows.tolist(), du.columns.tolist(), values.tolist()):
            yield i, j, v

    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Batched ctl decode plus the value-index gather (plan-cached)."""
        from repro.kernels.plan import _check_x, get_plan

        x = _check_x(x, self.ncols)
        return get_plan(self).spmv(self.vals_unique[self.val_ind], x, out=out)

    def spmm(self, X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Multi-vector ``Y = A X``: one ctl decode and one value gather."""
        from repro.kernels.plan import _check_xmat, get_plan

        X = _check_xmat(X, self.ncols)
        return get_plan(self).spmm(self.vals_unique[self.val_ind], X, out=out)

    @classmethod
    def from_csr(
        cls,
        csr: CSRMatrix,
        *,
        policy: str = "greedy",
        max_unit: int = MAX_UNIT_SIZE,
        encoder: str = "batched",
    ) -> "CSRDUVIMatrix":
        du = CSRDUMatrix.from_csr(
            csr, policy=policy, max_unit=max_unit, encoder=encoder
        )
        uv = unique_index_values(csr.values)
        matrix = cls(csr.nrows, csr.ncols, du.ctl, uv.vals_unique, uv.val_ind)
        table = getattr(du, "_unit_table", None)
        if table is not None:
            matrix._unit_table = table
        return matrix

    def to_csr(self) -> CSRMatrix:
        du = self.units
        rows = np.repeat(du.rows, du.sizes)
        counts = np.bincount(rows, minlength=self.nrows) if rows.size else np.zeros(
            self.nrows, dtype=np.int64
        )
        row_ptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        return CSRMatrix(
            self.nrows,
            self.ncols,
            row_ptr.astype(np.int32),
            du.columns.astype(np.int32),
            self.vals_unique[self.val_ind],
        )
