"""Coordinate (COO) format: one ``(row, col, value)`` triplet per nonzero.

COO is the interchange format of this library: generators emit it,
Matrix Market I/O reads into it, and every compressed format can be
reached from it through CSR.  Duplicate coordinates are summed during
canonicalization, matching the usual assembly semantics of FEM codes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix, Storage, register_format
from repro.util.validation import (
    as_index_array,
    as_value_array,
    check_in_range,
)


@register_format
class COOMatrix(SparseMatrix):
    """Coordinate-format sparse matrix.

    Construction canonicalizes: entries are sorted row-major and
    duplicate coordinates are summed (use ``sum_duplicates=False`` to
    forbid duplicates instead, raising on any).
    """

    name = "coo"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        rows,
        cols,
        values,
        *,
        sum_duplicates: bool = True,
    ):
        super().__init__(nrows, ncols)
        rows = as_index_array(rows, "rows")
        cols = as_index_array(cols, "cols")
        values = as_value_array(values, "values")
        if not (rows.size == cols.size == values.size):
            raise FormatError(
                f"length mismatch: rows={rows.size} cols={cols.size} values={values.size}"
            )
        check_in_range(rows, self.nrows, "rows")
        check_in_range(cols, self.ncols, "cols")
        # Canonical order: row-major, then by column.
        order = np.lexsort((cols, rows))
        rows, cols, values = rows[order], cols[order], values[order]
        if rows.size:
            dup = np.flatnonzero((np.diff(rows) == 0) & (np.diff(cols) == 0))
            if dup.size:
                if not sum_duplicates:
                    raise FormatError(f"{dup.size} duplicate coordinates")
                keep = np.ones(rows.size, dtype=bool)
                keep[dup + 1] = False
                # Sum runs of duplicates onto their first occurrence.
                group = np.cumsum(keep) - 1
                summed = np.zeros(int(group[-1]) + 1, dtype=values.dtype)
                np.add.at(summed, group, values)
                rows, cols, values = rows[keep], cols[keep], summed
        self.rows = rows
        self.cols = cols
        self.values = values

    # -- SparseMatrix interface ----------------------------------------
    @property
    def nnz(self) -> int:
        return self.values.size

    def storage(self) -> Storage:
        return Storage(
            index_bytes=self.rows.nbytes + self.cols.nbytes,
            value_bytes=self.values.nbytes,
        )

    def iter_entries(self) -> Iterator[tuple[int, int, float]]:
        for i, j, v in zip(
            self.rows.tolist(), self.cols.tolist(), self.values.tolist()
        ):
            yield i, j, v

    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise FormatError(f"x has shape {x.shape}, expected ({self.ncols},)")
        y = out if out is not None else np.zeros(self.nrows, dtype=np.float64)
        if out is not None:
            y[:] = 0.0
        np.add.at(y, self.rows, self.values * x[self.cols])
        return y

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_dense(cls, dense) -> "COOMatrix":
        """Build from a dense 2-D array, storing its nonzero entries."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise FormatError(f"dense input must be 2-D, got {dense.ndim}-D")
        rows, cols = np.nonzero(dense)
        return cls(
            dense.shape[0],
            dense.shape[1],
            rows.astype(np.int32),
            cols.astype(np.int32),
            dense[rows, cols],
        )

    @classmethod
    def from_coo(cls, coo: "COOMatrix") -> "COOMatrix":
        return coo

    def row_ptr(self) -> np.ndarray:
        """CSR-style row offsets of the canonical entry order."""
        counts = np.bincount(self.rows, minlength=self.nrows)
        out = np.zeros(self.nrows + 1, dtype=np.int64)
        np.cumsum(counts, out=out[1:])
        return out
