"""Generic conversions between any two registered formats.

All roads go through CSR: every format implements ``from_csr`` /
``to_csr`` (COO uses ``from_coo``/``to_coo``), so :func:`convert` is a
two-hop bridge.  Keeping one canonical hub format keeps the conversion
graph linear in the number of formats instead of quadratic.
"""

from __future__ import annotations

from repro.errors import FormatError
from repro.formats.base import SparseMatrix, get_format
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.telemetry import core as telemetry


def to_csr(matrix: SparseMatrix) -> CSRMatrix:
    """Bring any format to CSR."""
    if isinstance(matrix, CSRMatrix):
        return matrix
    if isinstance(matrix, COOMatrix):
        return CSRMatrix.from_coo(matrix)
    converter = getattr(matrix, "to_csr", None)
    if converter is not None:
        return converter()
    to_coo = getattr(matrix, "to_coo", None)
    if to_coo is not None:
        return CSRMatrix.from_coo(to_coo())
    raise FormatError(f"{type(matrix).__name__} cannot convert to CSR")


def convert(matrix: SparseMatrix, name: str, **kwargs) -> SparseMatrix:
    """Convert *matrix* to the format registered under *name*.

    Extra keyword arguments are forwarded to the target's ``from_csr``
    (e.g. ``policy=`` for CSR-DU, ``r=``/``c=`` for BCSR).
    """
    cls = get_format(name)
    if isinstance(matrix, cls) and not kwargs:
        return matrix
    with telemetry.span(
        "convert", target=name, nrows=matrix.nrows, ncols=matrix.ncols
    ):
        csr = to_csr(matrix)
        if cls is CSRMatrix:
            return csr
        if cls is COOMatrix:
            return csr.to_coo()
        return cls.from_csr(csr, **kwargs)
