"""Base class and registry for sparse-matrix storage formats.

Every format in :mod:`repro.formats` derives from :class:`SparseMatrix`
and reports its storage honestly, split the way the paper splits it:

* **index bytes** -- structural data (``row_ptr``/``col_ind`` for CSR,
  the ``ctl`` stream for CSR-DU, command streams for DCSR, ...);
* **value bytes** -- numerical data (``values`` for CSR,
  ``vals_unique`` + ``val_ind`` for CSR-VI).

That split drives both the compression-ratio reporting of Figs. 7/8 and
the machine model's traffic accounting, so each format implements
:meth:`SparseMatrix.storage` exactly from its real arrays.

Formats register themselves with :func:`register_format` so the
benchmark harness and CLI can look them up by the names used in the
paper (``"csr"``, ``"csr-du"``, ``"csr-vi"``, ...).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.errors import FormatError
from repro.util.validation import check_dimensions


@dataclass(frozen=True)
class Storage:
    """Byte accounting for one stored matrix.

    ``index_bytes`` + ``value_bytes`` is the matrix footprint; adding
    the dense vectors gives the paper's working set (see
    :func:`working_set_bytes`).
    """

    index_bytes: int
    value_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.index_bytes + self.value_bytes

    def ratio_to(self, other: "Storage") -> float:
        """This format's size relative to *other* (< 1 means smaller)."""
        if other.total_bytes == 0:
            raise FormatError("reference storage is empty")
        return self.total_bytes / other.total_bytes


def check_out_aliasing(out: np.ndarray, *sources: np.ndarray) -> np.ndarray:
    """Reject an ``out=`` buffer that shares memory with an input.

    The multi-vector and partial-reduction paths write ``out`` while
    still reading their inputs (column by column, partial by partial),
    so an aliased buffer silently corrupts the answer mid-computation.
    The contract is *no overlap*; violations raise
    :class:`~repro.errors.IntegrityError` instead of returning wrong
    numbers.  (``spmv(out=)`` on the plannable formats computes every
    product before writing and needs no check — this guards the looped
    paths.)
    """
    from repro.errors import IntegrityError

    for src in sources:
        if np.may_share_memory(out, src):
            raise IntegrityError(
                "out= buffer shares memory with an input array; the "
                "looped multi-vector/reduction paths require a disjoint "
                "output (pass a fresh buffer or copy the input)"
            )
    return out


class SparseMatrix(abc.ABC):
    """Abstract sparse matrix.

    Concrete formats store their arrays however the paper specifies and
    implement the small interface below.  SpMV kernels live separately
    in :mod:`repro.kernels`; ``A @ x`` is a convenience that dispatches
    to the format's default kernel.
    """

    #: Registry name, set by each concrete class (e.g. ``"csr-du"``).
    name: str = ""

    def __init__(self, nrows: int, ncols: int):
        self._nrows, self._ncols = check_dimensions(nrows, ncols)

    # -- shape ---------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self._nrows, self._ncols)

    @property
    def nrows(self) -> int:
        return self._nrows

    @property
    def ncols(self) -> int:
        return self._ncols

    # -- abstract interface --------------------------------------------
    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of stored nonzero elements."""

    @abc.abstractmethod
    def storage(self) -> Storage:
        """Actual byte footprint, split into index and value bytes."""

    @abc.abstractmethod
    def iter_entries(self) -> Iterator[tuple[int, int, float]]:
        """Yield ``(row, col, value)`` triplets in row-major order."""

    @abc.abstractmethod
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``y = A x`` with this format's default (vectorized) kernel."""

    def spmm(self, X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``Y = A X`` for ``k`` right-hand sides (the columns of *X*).

        The default loops :meth:`spmv` over the columns; the plannable
        formats (csr, csr-vi, csr-du, csr-du-vi) override it with a
        multi-vector kernel that decodes the structure once per call
        and amortizes it across all right-hand sides.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != self.ncols:
            raise FormatError(f"X has shape {X.shape}, expected ({self.ncols}, k)")
        if out is None:
            out = np.empty((self.nrows, X.shape[1]), dtype=np.float64)
        else:
            check_out_aliasing(out, X)
        for j in range(X.shape[1]):
            self.spmv(X[:, j], out=out[:, j])
        return out

    # -- integrity -----------------------------------------------------
    def verify(self, *, value_policy: str = "finite") -> "SparseMatrix":
        """Run every applicable integrity check; return ``self``.

        Structural invariants (row pointers, index ranges, ctl-stream
        well-formedness via the non-decoding walker), the NaN/Inf
        *value_policy*, and — when :meth:`seal` was called — checksum
        verification of every stored array.  Raises
        :class:`~repro.errors.IntegrityError` with byte-offset/row
        context on the first failure.  See :mod:`repro.robust.validate`.
        """
        from repro.robust.validate import verify_matrix

        return verify_matrix(self, value_policy=value_policy)

    def seal(self) -> "SparseMatrix":
        """Stamp CRC32 checksums of the stored arrays; return ``self``.

        After sealing, :meth:`verify` additionally re-hashes every
        array — the only check that catches corruptions which keep the
        structure plausible (in-range bit flips).  Opt-in: unsealed
        matrices pay nothing.
        """
        from repro.robust.validate import seal as _seal

        return _seal(self)

    # -- generic helpers -----------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (tests / tiny matrices only)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        for i, j, v in self.iter_entries():
            dense[i, j] += v
        return dense

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.spmv(np.asarray(x))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        st = self.storage()
        return (
            f"<{type(self).__name__} {self.nrows}x{self.ncols}, nnz={self.nnz}, "
            f"{st.total_bytes / 1e6:.2f} MB>"
        )


def working_set_bytes(
    matrix: SparseMatrix, *, value_size: int = 8
) -> int:
    """The paper's SpMV working set: matrix storage plus the x/y vectors.

    ``ws = index_bytes + value_bytes + (nrows + ncols) * value_size``
    (Section II-B).
    """
    st = matrix.storage()
    return st.total_bytes + (matrix.nrows + matrix.ncols) * value_size


def csr_working_set_bytes(
    nrows: int, ncols: int, nnz: int, *, index_size: int = 4, value_size: int = 8
) -> int:
    """Closed-form working set of plain CSR (the paper's ws formula).

    Used by the matrix catalog to size synthetic matrices without
    materializing them first.
    """
    csr = nnz * (index_size + value_size) + (nrows + 1) * index_size
    return csr + (nrows + ncols) * value_size


# ---------------------------------------------------------------------------
# Format registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, type] = {}


def register_format(cls: type) -> type:
    """Class decorator registering a format under its ``name``."""
    if not getattr(cls, "name", ""):
        raise FormatError(f"{cls.__name__} has no registry name")
    if cls.name in _REGISTRY:
        raise FormatError(f"format name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_format(name: str) -> type:
    """Look a format class up by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise FormatError(
            f"unknown format {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def available_formats() -> tuple[str, ...]:
    """Names of all registered formats, sorted."""
    return tuple(sorted(_REGISTRY))


def format_converter(name: str) -> Callable:
    """Return ``cls.from_csr`` (or ``cls.from_coo``) for *name*.

    Every non-CSR format provides ``from_csr``; CSR itself and COO
    provide ``from_coo``.
    """
    cls = get_format(name)
    conv = getattr(cls, "from_csr", None) or getattr(cls, "from_coo", None)
    if conv is None:
        raise FormatError(f"format {name!r} has no converter")
    return conv
