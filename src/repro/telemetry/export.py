"""Trace export: JSONL event stream, Chrome trace-event JSON, summaries.

Three consumers of a :class:`~repro.telemetry.core.Collector`:

* :func:`write_jsonl` / :func:`read_jsonl` -- one JSON object per line,
  schema-checked by :func:`validate_event` (this is the ``--trace``
  format and what downstream analysis should parse);
* :func:`write_chrome_trace` -- the Chrome trace-event JSON array
  (open in ``chrome://tracing`` or https://ui.perfetto.dev): spans
  become complete (``"ph": "X"``) events, counters become ``"ph": "C"``
  counter tracks;
* :func:`summary` -- a plain-text report of the top spans by total
  time plus all counters and gauges (the ``profile`` subcommand).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any, Iterable

from repro.errors import TelemetryError
from repro.telemetry.core import Collector, Event

#: JSONL event fields and the types each must carry.
EVENT_FIELDS: dict[str, type | tuple[type, ...]] = {
    "kind": str,
    "name": str,
    "ts_us": (int, float),
    "dur_us": (int, float),
    "value": (int, float),
    "thread": str,
    "tid": int,
    "depth": int,
    "attrs": dict,
}

EVENT_KINDS = ("span", "counter", "gauge")


def validate_event(event: dict[str, Any]) -> None:
    """Check one decoded JSONL record against the event schema.

    Raises :class:`~repro.errors.TelemetryError` naming the offending
    field; silence means the event conforms.
    """
    if not isinstance(event, dict):
        raise TelemetryError(f"event must be an object, got {type(event).__name__}")
    for name, types in EVENT_FIELDS.items():
        if name not in event:
            raise TelemetryError(f"event missing field {name!r}: {event!r}")
        if not isinstance(event[name], types) or isinstance(event[name], bool):
            raise TelemetryError(
                f"event field {name!r} has type {type(event[name]).__name__}"
            )
    extra = set(event) - set(EVENT_FIELDS)
    if extra:
        raise TelemetryError(f"event has unknown fields {sorted(extra)}")
    if event["kind"] not in EVENT_KINDS:
        raise TelemetryError(f"unknown event kind {event['kind']!r}")
    if not event["name"]:
        raise TelemetryError("event name is empty")
    if event["dur_us"] < 0:
        raise TelemetryError(f"negative span duration {event['dur_us']}")
    if event["depth"] < 0:
        raise TelemetryError(f"negative depth {event['depth']}")
    for key in event["attrs"]:
        if not isinstance(key, str):
            raise TelemetryError(f"attribute key {key!r} is not a string")


def events_as_dicts(collector: Collector) -> list[dict[str, Any]]:
    """The collector's event stream as schema-conforming dicts."""
    return [asdict(ev) for ev in collector.snapshot()]


def write_jsonl(collector: Collector, path: str) -> int:
    """Write one JSON object per event; returns the event count."""
    events = events_as_dicts(collector)
    with open(path, "w", encoding="utf-8") as fh:
        for ev in events:
            fh.write(json.dumps(ev, sort_keys=True, default=_jsonable))
            fh.write("\n")
    return len(events)


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL trace back into event dicts (no validation)."""
    events: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise TelemetryError(f"{path}:{lineno}: not JSON: {exc}") from exc
    return events


def _jsonable(obj: Any):
    """Coerce NumPy scalars and other stragglers to plain JSON types."""
    for cast in (int, float):
        try:
            return cast(obj)
        except (TypeError, ValueError):
            continue
    return str(obj)


def write_chrome_trace(collector: Collector, path: str) -> int:
    """Write the Chrome trace-event JSON; returns the trace-event count.

    Spans map to complete events on their real thread track; counter
    events map to Chrome counter tracks so e.g. simulated DRAM bytes
    plot as a graph over the run.

    Events ingested from pool workers (:mod:`repro.obs.xproc`) carry a
    ``pid`` attribute; those render on their own process track -- one
    per worker pid, labelled via ``process_name`` metadata -- so a
    multi-process run reads as one timeline with the parent at pid 0.
    """
    trace_events: list[dict[str, Any]] = []
    pids: set[int] = set()
    for ev in collector.snapshot():
        pid = ev.attrs.get("pid", 0)
        pid = pid if isinstance(pid, int) and not isinstance(pid, bool) else 0
        pids.add(pid)
        if ev.kind == "span":
            trace_events.append(
                {
                    "ph": "X",
                    "name": ev.name,
                    "ts": ev.ts_us,
                    "dur": ev.dur_us,
                    "pid": pid,
                    "tid": ev.tid,
                    "args": ev.attrs,
                }
            )
        # Gauges have no natural Chrome phase; they ride as counters too.
        else:
            trace_events.append(
                {
                    "ph": "C",
                    "name": ev.name,
                    "ts": ev.ts_us,
                    "pid": pid,
                    "tid": ev.tid,
                    "args": {ev.name: ev.value},
                }
            )
    # Track names only matter once there is more than one track; a
    # single-process trace keeps the historical shape unchanged.
    metadata = (
        [
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {
                    "name": "parent" if pid == 0 else f"worker pid {pid}"
                },
            }
            for pid in sorted(pids)
        ]
        if pids != {0}
        else []
    )
    doc = {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, default=_jsonable)
    return len(trace_events)


def span_stats(collector: Collector) -> dict[str, dict[str, float]]:
    """Aggregate span events by name: calls, total/mean/max duration (us)."""
    stats: dict[str, dict[str, float]] = {}
    for ev in collector.snapshot():
        if ev.kind != "span":
            continue
        s = stats.setdefault(ev.name, {"calls": 0, "total_us": 0.0, "max_us": 0.0})
        s["calls"] += 1
        s["total_us"] += ev.dur_us
        s["max_us"] = max(s["max_us"], ev.dur_us)
    for s in stats.values():
        s["mean_us"] = s["total_us"] / s["calls"] if s["calls"] else 0.0
    return stats


def counter_breakdown(
    counters: dict[str, float],
) -> dict[str, dict[str, float]]:
    """Counters regrouped by base name: ``{base: {full_key: value}}``.

    ``plan.hit{format=csr-du}`` and ``plan.hit{format=csr-vi}`` share
    the base ``plan.hit``; summing a base's values gives its total
    across labels.
    """
    groups: dict[str, dict[str, float]] = {}
    for key, value in counters.items():
        base = key.split("{", 1)[0]
        groups.setdefault(base, {})[key] = value
    return groups


def reliability_summary(collector: Collector) -> dict[str, float]:
    """Headline reliability signals, lifted out of the raw counters.

    The encode-cache hit ratio and the fallback/retry totals are the
    run-health numbers a reader should not have to reassemble from
    per-label counter lines:

    * ``cache_hits`` / ``cache_misses`` / ``cache_hit_ratio`` -- the
      ``convert.cache.*`` totals across formats (ratio is 0.0 when no
      lookups happened);
    * ``kernel_fallbacks`` -- guarded-kernel tier degradations;
    * ``executor_retries`` -- chunks re-encoded after decode failures;
    * ``alerts`` -- fired ``obs.alert`` SLO events;
    * ``shard_attaches`` and the ``shard_cache_*`` trio -- the storage
      layer's attach traffic and the worker-side shard-cache hit ratio
      (``storage.shard.cache.*`` marks flow back from pool workers via
      :mod:`repro.obs.xproc`).

    Anything nonzero among fallbacks/retries/alerts means the run
    degraded somewhere, even if every result was still bit-correct.
    """
    groups = counter_breakdown(collector.counters)

    def total(base: str) -> float:
        return sum(groups.get(base, {}).values())

    hits = total("convert.cache.hit")
    misses = total("convert.cache.miss")
    lookups = hits + misses
    shard_hits = total("storage.shard.cache.hit")
    shard_misses = total("storage.shard.cache.miss")
    shard_lookups = shard_hits + shard_misses
    return {
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_ratio": hits / lookups if lookups else 0.0,
        "kernel_fallbacks": total("kernel.fallback"),
        "executor_retries": total("executor.retry"),
        "alerts": total("obs.alert"),
        "shard_attaches": total("storage.shard.attach"),
        "shard_cache_hits": shard_hits,
        "shard_cache_misses": shard_misses,
        "shard_cache_hit_ratio": (
            shard_hits / shard_lookups if shard_lookups else 0.0
        ),
    }


def alert_events(collector: Collector) -> list[Event]:
    """Every ``obs.alert`` event of the run, in emission order."""
    return [ev for ev in collector.snapshot() if ev.name == "obs.alert"]


def summary(collector: Collector, *, top: int = 20) -> str:
    """Plain-text report: top spans by total time, reliability headline,
    fired SLO alerts, counters, gauges.

    *top* caps the span table; counters print one total per base name
    with the per-label keys indented beneath it.
    """
    lines: list[str] = []
    stats = span_stats(collector)
    lines.append(f"--- telemetry summary ({len(collector)} events) ---")
    lines.append("")
    lines.append(f"top spans (by total time, showing {min(top, len(stats))})")
    lines.append(
        f"  {'span':<28} {'calls':>7} {'total ms':>10} {'mean ms':>10} {'max ms':>10}"
    )
    ordered = sorted(stats.items(), key=lambda kv: kv[1]["total_us"], reverse=True)
    for name, s in ordered[:top]:
        lines.append(
            f"  {name:<28} {int(s['calls']):>7} {s['total_us'] / 1e3:>10.3f} "
            f"{s['mean_us'] / 1e3:>10.3f} {s['max_us'] / 1e3:>10.3f}"
        )
    rel = reliability_summary(collector)
    if any(rel.values()):
        lines.append("")
        lines.append("reliability")
        lines.append(
            f"  convert.cache hit ratio: {rel['cache_hit_ratio']:.1%} "
            f"({rel['cache_hits']:g} hits / {rel['cache_misses']:g} misses)"
        )
        lines.append(f"  kernel fallbacks: {rel['kernel_fallbacks']:g}")
        lines.append(f"  executor retries: {rel['executor_retries']:g}")
        if rel["shard_attaches"] or rel["shard_cache_hits"]:
            lines.append(
                f"  shard cache hit ratio: {rel['shard_cache_hit_ratio']:.1%} "
                f"({rel['shard_cache_hits']:g} hits / "
                f"{rel['shard_cache_misses']:g} misses, "
                f"{rel['shard_attaches']:g} attaches)"
            )
        alerts = alert_events(collector)
        lines.append(f"  SLO alerts fired: {len(alerts)}")
        for ev in alerts[:10]:
            lines.append(
                f"    [{ev.attrs.get('rule', '?')}] "
                f"{ev.attrs.get('expr', '?')}: observed "
                f"{ev.attrs.get('value', '?')} vs {ev.attrs.get('threshold', '?')}"
            )
        if len(alerts) > 10:
            lines.append(f"    ... and {len(alerts) - 10} more")
    if collector.counters:
        lines.append("")
        lines.append("counters")
        for base, keyed in sorted(counter_breakdown(collector.counters).items()):
            if len(keyed) == 1 and base in keyed:
                lines.append(f"  {base:<48} {keyed[base]:>14g}")
                continue
            lines.append(f"  {base:<48} {sum(keyed.values()):>14g}")
            for key in sorted(keyed):
                lines.append(f"    {key:<46} {keyed[key]:>14g}")
    if collector.gauges:
        lines.append("")
        lines.append("gauges")
        for key in sorted(collector.gauges):
            lines.append(f"  {key:<48} {collector.gauges[key]:>14g}")
    return "\n".join(lines)


def collector_metrics_snapshot(collector: Collector) -> dict[str, Any]:
    """The collector's aggregates as an obs-shaped snapshot dict.

    Lets :func:`export_all` render OpenMetrics even when no live
    :class:`~repro.obs.core.ObsRuntime` was installed: counters and
    gauges export with their labels parsed back out of the aggregate
    keys (no histograms or rates -- those only exist live).
    """
    def split(key: str) -> tuple[str, dict[str, str]]:
        if "{" not in key:
            return key, {}
        base, inner = key.split("{", 1)
        labels: dict[str, str] = {}
        for part in inner.rstrip("}").split(","):
            if "=" in part:
                k, v = part.split("=", 1)
                labels[k] = v
        return base, labels

    counters = []
    for key, value in sorted(collector.counters.items()):
        name, labels = split(key)
        counters.append({"name": name, "labels": labels, "total": value})
    gauges = []
    for key, value in sorted(collector.gauges.items()):
        name, labels = split(key)
        gauges.append({"name": name, "labels": labels, "value": value})
    return {"counters": counters, "gauges": gauges, "histograms": []}


def write_openmetrics(
    collector: Collector, path: str, *, obs_runtime=None
) -> int:
    """Write an OpenMetrics snapshot; returns the sample-line count.

    The active (or given) obs runtime supplies the full live state --
    histograms with quantiles, windowed rates, resource gauges, fired
    alerts.  Without one, the collector's own counter/gauge aggregates
    are rendered so ``--metrics-out`` degrades gracefully instead of
    writing an empty file.
    """
    from repro.obs import core as obs_core
    from repro.obs.openmetrics import render_openmetrics

    runtime = obs_runtime if obs_runtime is not None else obs_core.get_runtime()
    if runtime is not None:
        text = runtime.render_openmetrics()
    else:
        text = render_openmetrics(collector_metrics_snapshot(collector))
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )


def export_all(
    collector: Collector,
    *,
    jsonl_path: str | None = None,
    chrome_path: str | None = None,
    openmetrics_path: str | None = None,
    obs_runtime=None,
) -> dict[str, int]:
    """Write every requested artifact; returns per-artifact event counts."""
    written: dict[str, int] = {}
    if jsonl_path:
        written["jsonl"] = write_jsonl(collector, jsonl_path)
    if chrome_path:
        written["chrome"] = write_chrome_trace(collector, chrome_path)
    if openmetrics_path:
        written["openmetrics"] = write_openmetrics(
            collector, openmetrics_path, obs_runtime=obs_runtime
        )
    return written


def iter_validated(events: Iterable[dict[str, Any]]) -> Iterable[dict[str, Any]]:
    """Yield events, validating each (for streaming consumers)."""
    for ev in events:
        validate_event(ev)
        yield ev
