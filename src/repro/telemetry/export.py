"""Trace export: JSONL event stream, Chrome trace-event JSON, summaries.

Three consumers of a :class:`~repro.telemetry.core.Collector`:

* :func:`write_jsonl` / :func:`read_jsonl` -- one JSON object per line,
  schema-checked by :func:`validate_event` (this is the ``--trace``
  format and what downstream analysis should parse);
* :func:`write_chrome_trace` -- the Chrome trace-event JSON array
  (open in ``chrome://tracing`` or https://ui.perfetto.dev): spans
  become complete (``"ph": "X"``) events, counters become ``"ph": "C"``
  counter tracks;
* :func:`summary` -- a plain-text report of the top spans by total
  time plus all counters and gauges (the ``profile`` subcommand).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any, Iterable

from repro.errors import TelemetryError
from repro.telemetry.core import Collector, Event

#: JSONL event fields and the types each must carry.
EVENT_FIELDS: dict[str, type | tuple[type, ...]] = {
    "kind": str,
    "name": str,
    "ts_us": (int, float),
    "dur_us": (int, float),
    "value": (int, float),
    "thread": str,
    "tid": int,
    "depth": int,
    "attrs": dict,
}

EVENT_KINDS = ("span", "counter", "gauge")


def validate_event(event: dict[str, Any]) -> None:
    """Check one decoded JSONL record against the event schema.

    Raises :class:`~repro.errors.TelemetryError` naming the offending
    field; silence means the event conforms.
    """
    if not isinstance(event, dict):
        raise TelemetryError(f"event must be an object, got {type(event).__name__}")
    for name, types in EVENT_FIELDS.items():
        if name not in event:
            raise TelemetryError(f"event missing field {name!r}: {event!r}")
        if not isinstance(event[name], types) or isinstance(event[name], bool):
            raise TelemetryError(
                f"event field {name!r} has type {type(event[name]).__name__}"
            )
    extra = set(event) - set(EVENT_FIELDS)
    if extra:
        raise TelemetryError(f"event has unknown fields {sorted(extra)}")
    if event["kind"] not in EVENT_KINDS:
        raise TelemetryError(f"unknown event kind {event['kind']!r}")
    if not event["name"]:
        raise TelemetryError("event name is empty")
    if event["dur_us"] < 0:
        raise TelemetryError(f"negative span duration {event['dur_us']}")
    if event["depth"] < 0:
        raise TelemetryError(f"negative depth {event['depth']}")
    for key in event["attrs"]:
        if not isinstance(key, str):
            raise TelemetryError(f"attribute key {key!r} is not a string")


def events_as_dicts(collector: Collector) -> list[dict[str, Any]]:
    """The collector's event stream as schema-conforming dicts."""
    return [asdict(ev) for ev in collector.snapshot()]


def write_jsonl(collector: Collector, path: str) -> int:
    """Write one JSON object per event; returns the event count."""
    events = events_as_dicts(collector)
    with open(path, "w", encoding="utf-8") as fh:
        for ev in events:
            fh.write(json.dumps(ev, sort_keys=True, default=_jsonable))
            fh.write("\n")
    return len(events)


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL trace back into event dicts (no validation)."""
    events: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise TelemetryError(f"{path}:{lineno}: not JSON: {exc}") from exc
    return events


def _jsonable(obj: Any):
    """Coerce NumPy scalars and other stragglers to plain JSON types."""
    for cast in (int, float):
        try:
            return cast(obj)
        except (TypeError, ValueError):
            continue
    return str(obj)


def write_chrome_trace(collector: Collector, path: str) -> int:
    """Write the Chrome trace-event JSON; returns the trace-event count.

    Spans map to complete events on their real thread track; counter
    events map to Chrome counter tracks so e.g. simulated DRAM bytes
    plot as a graph over the run.
    """
    trace_events: list[dict[str, Any]] = []
    for ev in collector.snapshot():
        if ev.kind == "span":
            trace_events.append(
                {
                    "ph": "X",
                    "name": ev.name,
                    "ts": ev.ts_us,
                    "dur": ev.dur_us,
                    "pid": 0,
                    "tid": ev.tid,
                    "args": ev.attrs,
                }
            )
        elif ev.kind == "counter":
            trace_events.append(
                {
                    "ph": "C",
                    "name": ev.name,
                    "ts": ev.ts_us,
                    "pid": 0,
                    "tid": ev.tid,
                    "args": {ev.name: ev.value},
                }
            )
        # Gauges have no natural Chrome phase; they ride as counters too.
        else:
            trace_events.append(
                {
                    "ph": "C",
                    "name": ev.name,
                    "ts": ev.ts_us,
                    "pid": 0,
                    "tid": ev.tid,
                    "args": {ev.name: ev.value},
                }
            )
    doc = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, default=_jsonable)
    return len(trace_events)


def span_stats(collector: Collector) -> dict[str, dict[str, float]]:
    """Aggregate span events by name: calls, total/mean/max duration (us)."""
    stats: dict[str, dict[str, float]] = {}
    for ev in collector.snapshot():
        if ev.kind != "span":
            continue
        s = stats.setdefault(ev.name, {"calls": 0, "total_us": 0.0, "max_us": 0.0})
        s["calls"] += 1
        s["total_us"] += ev.dur_us
        s["max_us"] = max(s["max_us"], ev.dur_us)
    for s in stats.values():
        s["mean_us"] = s["total_us"] / s["calls"] if s["calls"] else 0.0
    return stats


def counter_breakdown(
    counters: dict[str, float],
) -> dict[str, dict[str, float]]:
    """Counters regrouped by base name: ``{base: {full_key: value}}``.

    ``plan.hit{format=csr-du}`` and ``plan.hit{format=csr-vi}`` share
    the base ``plan.hit``; summing a base's values gives its total
    across labels.
    """
    groups: dict[str, dict[str, float]] = {}
    for key, value in counters.items():
        base = key.split("{", 1)[0]
        groups.setdefault(base, {})[key] = value
    return groups


def summary(collector: Collector, *, top: int = 20) -> str:
    """Plain-text report: top spans by total time, counters, gauges.

    *top* caps the span table; counters print one total per base name
    with the per-label keys indented beneath it.
    """
    lines: list[str] = []
    stats = span_stats(collector)
    lines.append(f"--- telemetry summary ({len(collector)} events) ---")
    lines.append("")
    lines.append(f"top spans (by total time, showing {min(top, len(stats))})")
    lines.append(
        f"  {'span':<28} {'calls':>7} {'total ms':>10} {'mean ms':>10} {'max ms':>10}"
    )
    ordered = sorted(stats.items(), key=lambda kv: kv[1]["total_us"], reverse=True)
    for name, s in ordered[:top]:
        lines.append(
            f"  {name:<28} {int(s['calls']):>7} {s['total_us'] / 1e3:>10.3f} "
            f"{s['mean_us'] / 1e3:>10.3f} {s['max_us'] / 1e3:>10.3f}"
        )
    if collector.counters:
        lines.append("")
        lines.append("counters")
        for base, keyed in sorted(counter_breakdown(collector.counters).items()):
            if len(keyed) == 1 and base in keyed:
                lines.append(f"  {base:<48} {keyed[base]:>14g}")
                continue
            lines.append(f"  {base:<48} {sum(keyed.values()):>14g}")
            for key in sorted(keyed):
                lines.append(f"    {key:<46} {keyed[key]:>14g}")
    if collector.gauges:
        lines.append("")
        lines.append("gauges")
        for key in sorted(collector.gauges):
            lines.append(f"  {key:<48} {collector.gauges[key]:>14g}")
    return "\n".join(lines)


def export_all(
    collector: Collector,
    *,
    jsonl_path: str | None = None,
    chrome_path: str | None = None,
) -> dict[str, int]:
    """Write every requested artifact; returns per-artifact event counts."""
    written: dict[str, int] = {}
    if jsonl_path:
        written["jsonl"] = write_jsonl(collector, jsonl_path)
    if chrome_path:
        written["chrome"] = write_chrome_trace(collector, chrome_path)
    return written


def iter_validated(events: Iterable[dict[str, Any]]) -> Iterable[dict[str, Any]]:
    """Yield events, validating each (for streaming consumers)."""
    for ev in events:
        validate_event(ev)
        yield ev
