"""Domain metrics: the event vocabulary of the SpMV reproduction.

Every instrumented subsystem funnels through one helper here, so the
set of event names below *is* the schema (the smoke checker in
``tools/smoke_trace.py`` validates traces against it).  Helpers take
plain scalars/sequences -- never format or partition objects -- so this
module imports nothing from the rest of the library and can be called
from any layer without cycles.

Event vocabulary
----------------

=============================  =======  ==============================================
name                           kind     meaning / labels
=============================  =======  ==============================================
``convert``                    span     format conversion; ``target``, ``nrows``,
                                        ``ncols``
``convert.cache.hit``          counter  conversion served from the encode cache;
                                        ``format``
``convert.cache.miss``         counter  conversion that had to encode; ``format``
``convert.cache.evict.bytes``  counter  bytes released by a byte-budget LRU
                                        eviction; ``format`` of the evicted
                                        entry
``encode.batched``             span     vectorized one-pass encode; ``kind``
                                        (csr-du/csr-vi), ``policy``, ``nnz``,
                                        ``nunits``, ``ctl_bytes``
``encode.csr_du.unitize``      span     CSR-DU delta/unit splitting; ``policy``
``encode.csr_du.units``        counter  units emitted; ``width`` in u8/u16/u32/u64
``encode.csr_du.seq_units``    counter  sequential (constant-stride) units
``encode.csr_du.new_rows``     counter  new-row markers (NR flags) emitted
``encode.csr_du.ctl_bytes``    counter  serialized ctl stream bytes
``encode.csr_vi.unique``       span     CSR-VI unique-value indexing
``encode.csr_vi.unique_vals``  gauge    unique-table size of the last encode
``encode.csr_vi.val_ind_bits`` gauge    val_ind width (bits) of the last encode
``encode.csr_vi.ttu``          gauge    total-to-unique ratio of the last encode
``plan.build``                 span     kernel-plan construction; ``format``,
                                        ``nnz``
``plan.hit``                   counter  plan lookups served from the cache;
                                        ``format``
``plan.miss``                  counter  plan lookups that had to build;
                                        ``format``
``partition.nnz``              counter  nonzeros assigned; ``thread``, ``lo``,
                                        ``hi`` (row/col-block bounds), ``kind``
``partition.imbalance``        gauge    max/mean nnz per thread of the last split
``parallel.spmv``              span     one multithreaded SpMV call; ``threads``
                                        (+ ``backend`` on the process path)
``parallel.chunk``             span     one thread's chunk of one call;
                                        ``thread``, ``lo``, ``hi``, ``nnz``,
                                        ``kind`` (row/column/block); process
                                        workers emit the span inside the
                                        worker (plus ``backend``, ``pid``,
                                        ``run_id``), merged into the parent
                                        stream by ``repro.obs.xproc``; the
                                        parent additionally emits a counter
                                        with the same payload plus ``backend``
                                        and worker-measured ``seconds``
``worker.attach``              span     shard-cache lookup + attach inside a
                                        pool worker (covers CRC verify and
                                        decode); ``index``, ``generation``
``worker.multiply``            span     the shard kernel proper inside a
                                        pool worker; ``index``
``storage.shard.write``        counter  one shard packed + stored; label
                                        ``format``; payload ``index``,
                                        ``bytes``, ``storage`` (mem/shm/mmap)
``storage.shard.attach``       counter  one shard attached (CRC-verified)
                                        into a process; label ``format``;
                                        payload ``index``, ``storage``
``storage.shard.cache.hit``    counter  worker shard-LRU lookup served from
                                        cache; label ``storage``; payload
                                        ``index``
``storage.shard.cache.miss``   counter  worker shard-LRU lookup that had to
                                        attach; label ``storage``; payload
                                        ``index``
``storage.stream``             span     one streamed out-of-core SpMV;
                                        ``shards``, ``resumed_from``
``storage.stream.checkpoint``  counter  one shard's progress checkpointed;
                                        label ``format``; payload ``shard``,
                                        ``rows_done``
``validate``                   span     one integrity verification
                                        (``matrix.verify()``); ``format``,
                                        ``nnz``
``kernel.fallback``            counter  guarded kernel degraded one tier;
                                        label ``format``; payload
                                        ``from_tier``, ``to_tier``, ``error``
``executor.retry``             counter  chunk re-encoded (cache invalidated)
                                        and retried after a decode failure;
                                        label ``format``; payload ``thread``,
                                        ``lo``, ``hi``, ``error``
``executor.chunk.abandoned``   counter  chunk wait timed out and the result
                                        was discarded (thread backends cannot
                                        cancel the worker); labels ``kind``,
                                        ``backend``; payload ``thread``,
                                        ``lo``, ``hi``, ``timeout_s``.
                                        Imbalance recovery excludes spans
                                        matching these marks
``resilience.breaker.open``    counter  circuit breaker tripped closed/half-
                                        open -> open; label ``key`` (e.g.
                                        ``shard:1:g0``, ``backend:process:
                                        mem``); payload ``failures``
``resilience.breaker.half_open``  counter  cooldown expired; one probe call
                                        admitted; label ``key``
``resilience.breaker.close``   counter  half-open probe succeeded, breaker
                                        closed; label ``key``
``resilience.degrade``         counter  degradation-ladder transition; label
                                        ``format``; payload ``from_backend``,
                                        ``from_storage``, ``to_backend``,
                                        ``to_storage``, ``error``.  The obs
                                        counter ``resilience.degrade.total``
                                        mirrors it for the SLO rule engine
``resilience.deadline.expired``  counter  a wall-clock deadline ran out;
                                        label ``label`` (the checkpoint name,
                                        e.g. ``parallel.call``,
                                        ``stream.shard``); payload
                                        ``budget_s``
``perf.attribution``           counter  one attribution record per bench cell;
                                        labels ``format``, ``threads``,
                                        ``placement``; numeric payload
                                        (bytes_per_iter, effective_gbps,
                                        roofline_pct, imbalances, ...) plus the
                                        host fingerprint (``host_cpus``,
                                        ``host_platform``,
                                        ``host_calibration``) in attrs
``advisor.pick``               counter  one advisor decision; label ``format``;
                                        payload ``matrix_id``, ``kernel``,
                                        ``threads``, ``backend``,
                                        ``partition``, ``predicted_s``,
                                        ``realized_s`` (0 until the pick has
                                        run), ``source`` (analytic/calibrated/
                                        history), ``phase`` (advise/realized)
``sim.spmv``                   span     machine-model prediction; ``format``,
                                        ``threads``, ``placement``
``sim.bound``                  counter  binding constraint tally; ``bound``
``sim.dram_bytes``             counter  simulated DRAM bytes read per iteration
``sim.resident_fraction``      gauge    cache-resident working-set fraction
``bench.matrix``               span     all formats of one matrix; ``matrix_id``
``bench.cell``                 span     one (matrix, format) cell; ``matrix_id``,
                                        ``format``
``bench.measure``              span     real-clock measurement of one cell
``obs.alert``                  counter  one fired SLO rule from the live
                                        observability engine; label ``rule``;
                                        payload ``expr``, ``metric``, ``value``,
                                        ``threshold``
``obs.snapshot``               counter  one periodic/final observability
                                        snapshot flush; payload ``histograms``,
                                        ``counters``, ``gauges``, ``alerts``
                                        (series counts, not the full state)
``obs.resource.rss_bytes``     gauge    resident set size sampled by the
                                        resource monitor (``rss_is_peak``
                                        label on getrusage fallback)
``obs.resource.gc_collections``  gauge  total GC collections so far
``obs.resource.threads``       gauge    live Python thread count
=============================  =======  ==============================================
"""

from __future__ import annotations

from typing import Sequence

from repro.telemetry import core

#: Width-class label per CSR-DU delta class (index = class 0..3).
WIDTH_LABELS = ("u8", "u16", "u32", "u64")

#: Every event name a conforming trace may contain.
KNOWN_EVENTS = frozenset(
    {
        "convert",
        "convert.cache.hit",
        "convert.cache.miss",
        "convert.cache.evict.bytes",
        "encode.batched",
        "encode.csr_du.unitize",
        "encode.csr_du.units",
        "encode.csr_du.seq_units",
        "encode.csr_du.new_rows",
        "encode.csr_du.ctl_bytes",
        "encode.csr_vi.unique",
        "encode.csr_vi.unique_vals",
        "encode.csr_vi.val_ind_bits",
        "encode.csr_vi.ttu",
        "plan.build",
        "plan.hit",
        "plan.miss",
        "partition.nnz",
        "partition.imbalance",
        "parallel.spmv",
        "parallel.chunk",
        "worker.attach",
        "worker.multiply",
        "storage.shard.write",
        "storage.shard.attach",
        "storage.shard.cache.hit",
        "storage.shard.cache.miss",
        "storage.stream",
        "storage.stream.checkpoint",
        "validate",
        "kernel.fallback",
        "executor.retry",
        "executor.chunk.abandoned",
        "resilience.breaker.open",
        "resilience.breaker.half_open",
        "resilience.breaker.close",
        "resilience.degrade",
        "resilience.deadline.expired",
        "perf.attribution",
        "advisor.pick",
        "sim.spmv",
        "sim.bound",
        "sim.dram_bytes",
        "sim.resident_fraction",
        "bench.matrix",
        "bench.cell",
        "bench.measure",
        "obs.alert",
        "obs.snapshot",
        "obs.resource.rss_bytes",
        "obs.resource.gc_collections",
        "obs.resource.threads",
    }
)


def record_ctl_stream(
    class_counts: Sequence[int],
    *,
    new_rows: int,
    seq_units: int,
    ctl_bytes: int,
) -> None:
    """CSR-DU serialization census (one call per finished ctl stream).

    ``class_counts`` is the per-width-class unit tally the
    :class:`~repro.compress.ctl.CtlWriter` keeps -- together these are
    the paper's Table I statistics, now observable per encode.
    """
    c = core.get_collector()
    if c is None:
        return
    for cls, n in enumerate(class_counts):
        if n:
            c.count("encode.csr_du.units", n, width=WIDTH_LABELS[cls])
    if seq_units:
        c.count("encode.csr_du.seq_units", seq_units)
    c.count("encode.csr_du.new_rows", new_rows)
    c.count("encode.csr_du.ctl_bytes", ctl_bytes)


def record_unique_values(
    *, unique_count: int, val_ind_bits: int, ttu: float, nnz: int
) -> None:
    """CSR-VI value-compression outcome (one call per encode)."""
    c = core.get_collector()
    if c is None:
        return
    c.gauge("encode.csr_vi.unique_vals", unique_count, nnz=nnz)
    c.gauge("encode.csr_vi.val_ind_bits", val_ind_bits)
    c.gauge("encode.csr_vi.ttu", ttu)


def record_partition(
    boundaries: Sequence[int],
    nnz_per_thread: Sequence[int],
    *,
    kind: str = "row",
) -> None:
    """Per-thread nnz balance and block bounds of one partitioning.

    Emits one ``partition.nnz`` counter event per thread (the event's
    ``lo``/``hi`` attributes carry the thread's row/column-block
    bounds) plus the split's imbalance gauge.
    """
    c = core.get_collector()
    if c is None:
        return
    total = 0.0
    peak = 0.0
    n = len(nnz_per_thread)
    for t in range(n):
        nnz = float(nnz_per_thread[t])
        c.count(
            "partition.nnz",
            nnz,
            extra={"lo": int(boundaries[t]), "hi": int(boundaries[t + 1])},
            thread=t,
            kind=kind,
        )
        total += nnz
        peak = max(peak, nnz)
    mean = total / n if n else 0.0
    c.gauge("partition.imbalance", peak / mean if mean else 1.0, kind=kind)


def record_attribution(
    *,
    matrix_id: int,
    format_name: str,
    threads: int,
    placement: str,
    time_s: float,
    mflops: float,
    bytes_per_iter: int,
    index_bytes: int,
    value_bytes: int,
    vector_bytes: int,
    flops_per_byte: float,
    effective_gbps: float,
    dram_bytes: float,
    attainable_mflops: float,
    roofline_pct: float,
    bound: str,
    nnz_imbalance: float,
    time_imbalance: float,
    compression_ratio: float,
    speedup_vs_csr: float,
    plan_hits: int,
    plan_misses: int,
    setup_s: float = 0.0,
    host_cpus: int = 0,
    host_platform: str = "",
    host_calibration: str = "",
) -> None:
    """One performance-attribution record for a measured bench cell.

    Labels (``format``, ``threads``, ``placement``) key the aggregate
    counter (cells attributed per configuration); the numeric payload
    rides on the event so trace consumers -- the HTML dashboard, the
    smoke checker -- can rebuild the full record from the stream.
    """
    c = core.get_collector()
    if c is None:
        return
    c.count(
        "perf.attribution",
        1,
        extra={
            "matrix_id": int(matrix_id),
            "time_s": float(time_s),
            "mflops": float(mflops),
            "bytes_per_iter": int(bytes_per_iter),
            "index_bytes": int(index_bytes),
            "value_bytes": int(value_bytes),
            "vector_bytes": int(vector_bytes),
            "flops_per_byte": float(flops_per_byte),
            "effective_gbps": float(effective_gbps),
            "dram_bytes": float(dram_bytes),
            "attainable_mflops": float(attainable_mflops),
            "roofline_pct": float(roofline_pct),
            "bound": str(bound),
            "nnz_imbalance": float(nnz_imbalance),
            "time_imbalance": float(time_imbalance),
            "compression_ratio": float(compression_ratio),
            "speedup_vs_csr": float(speedup_vs_csr),
            "plan_hits": int(plan_hits),
            "plan_misses": int(plan_misses),
            "setup_s": float(setup_s),
            # Host fingerprint: wall-clock cells from a 1-CPU container
            # and an 8-core workstation must be distinguishable in the
            # trace itself, not by out-of-band prose.
            "host_cpus": int(host_cpus),
            "host_platform": str(host_platform),
            "host_calibration": str(host_calibration),
        },
        format=format_name,
        threads=threads,
        placement=placement,
    )


def record_advisor_pick(
    *,
    matrix_id: int,
    format_name: str,
    kernel: str,
    threads: int,
    backend: str,
    partition: str,
    predicted_s: float,
    realized_s: float,
    source: str,
    phase: str,
) -> None:
    """One advisor decision (or its realized-seconds follow-up).

    ``phase="advise"`` events carry the prediction (``realized_s`` 0);
    a caller that runs the pick reports back with ``phase="realized"``
    and the measured seconds, letting trace consumers compute the
    advisor's prediction error per matrix.
    """
    c = core.get_collector()
    if c is None:
        return
    c.count(
        "advisor.pick",
        1,
        extra={
            "matrix_id": int(matrix_id),
            "kernel": str(kernel),
            "threads": int(threads),
            "backend": str(backend),
            "partition": str(partition),
            "predicted_s": float(predicted_s),
            "realized_s": float(realized_s),
            "source": str(source),
            "phase": str(phase),
        },
        format=format_name,
    )


def record_sim_result(
    *,
    format_name: str,
    threads: int,
    placement: str,
    bound: str,
    dram_bytes: float,
    resident_fraction: float,
) -> None:
    """Machine-model verdict for one simulated configuration."""
    c = core.get_collector()
    if c is None:
        return
    c.count("sim.bound", 1, bound=bound)
    c.count(
        "sim.dram_bytes",
        dram_bytes,
        format=format_name,
        threads=threads,
        placement=placement,
    )
    c.gauge("sim.resident_fraction", resident_fraction, format=format_name)
