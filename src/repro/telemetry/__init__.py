"""Structured tracing and counters for the SpMV reproduction.

The package answers *why* a table cell is what it is: which unit widths
a matrix encodes into (CSR-DU), how large the unique-value table gets
(CSR-VI), how evenly the nnz-balanced partitioning really splits the
work, and which simulated resource bound every configuration hits --
all attributed to nested wall-clock spans around ``convert``, ``spmv``
and ``measure``.

Usage::

    from repro import telemetry

    telemetry.configure()                 # enable a fresh collector
    with telemetry.span("my.phase", matrix_id=7):
        ...
    telemetry.count("my.counter", 3, label="x")

    from repro.telemetry.export import summary, write_jsonl
    print(summary(telemetry.get_collector()))
    write_jsonl(telemetry.get_collector(), "trace.jsonl")

Disabled (the default), every entry point is a single attribute check
-- instrumentation stays in place at zero measurable cost, which the
telemetry test suite pins down (results are bit-identical either way).

Layout: :mod:`~repro.telemetry.core` (collector, spans, counters),
:mod:`~repro.telemetry.metrics` (the domain event vocabulary),
:mod:`~repro.telemetry.export` (JSONL / Chrome trace / summaries).
"""

from __future__ import annotations

from repro.telemetry.core import (
    NULL_SPAN,
    Collector,
    Event,
    configure,
    count,
    enabled,
    gauge,
    get_collector,
    set_collector,
    span,
    traced,
)

__all__ = [
    "NULL_SPAN",
    "Collector",
    "Event",
    "configure",
    "count",
    "enabled",
    "gauge",
    "get_collector",
    "set_collector",
    "span",
    "traced",
]
