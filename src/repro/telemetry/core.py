"""Telemetry core: a thread-safe event collector with nested spans.

The collector records three kinds of events into one ordered stream:

* **spans** -- wall-clock intervals with a name, per-thread nesting
  depth, and free-form attributes (context manager or decorator);
* **counters** -- monotonically accumulated values, keyed by name plus
  optional labels (``count("encode.csr_du.units", 12, width="u8")``);
* **gauges** -- last-value-wins observations (e.g. a ttu ratio).

Telemetry is *disabled by default*: the module-level ``_collector`` is
``None`` and every entry point (:func:`span`, :func:`count`,
:func:`gauge`) checks that single attribute before doing anything else,
so instrumented hot paths pay one attribute load plus one ``is None``
test when tracing is off.  :func:`configure` installs a fresh
:class:`Collector`; :func:`set_collector` swaps an explicit one in and
returns the previous (for scoped enabling in tests and the CLI).

Timestamps are microseconds since the collector's creation
(``time.perf_counter_ns`` based), which is exactly what the Chrome
trace-event export in :mod:`repro.telemetry.export` wants.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "Event",
    "Collector",
    "NULL_SPAN",
    "configure",
    "get_collector",
    "set_collector",
    "enabled",
    "span",
    "count",
    "gauge",
    "traced",
]


@dataclass(frozen=True)
class Event:
    """One recorded telemetry event.

    Attributes
    ----------
    kind:
        ``"span"``, ``"counter"`` or ``"gauge"``.
    name:
        Dotted event name (``"sim.spmv"``, ``"partition.nnz"``).
    ts_us:
        Start time in microseconds since the collector epoch (for
        spans the *start* of the interval, else the emission time).
    dur_us:
        Span duration in microseconds; 0.0 for counters/gauges.
    value:
        Counter increment or gauge value; 0.0 for spans.
    thread:
        Name of the emitting thread.
    tid:
        Python thread ident of the emitting thread.
    depth:
        Span nesting depth *in the emitting thread* (0 = top level);
        counters/gauges inherit the depth of the enclosing span.
    attrs:
        Free-form scalar attributes (labels for counters/gauges).
    """

    kind: str
    name: str
    ts_us: float
    dur_us: float
    value: float
    thread: str
    tid: int
    depth: int
    attrs: dict[str, Any] = field(default_factory=dict)


class _NullSpan:
    """Reusable no-op span, returned whenever telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, **attrs) -> "_NullSpan":
        return self


#: The singleton no-op span (one shared instance, zero allocation).
NULL_SPAN = _NullSpan()


class _Span:
    """A live span; created by :meth:`Collector.span`."""

    __slots__ = ("_collector", "name", "attrs", "_start_ns", "_depth")

    def __init__(self, collector: "Collector", name: str, attrs: dict[str, Any]):
        self._collector = collector
        self.name = name
        self.attrs = attrs
        self._start_ns = 0
        self._depth = 0

    def add(self, **attrs) -> "_Span":
        """Attach attributes after entry (e.g. results computed inside)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        self._depth = self._collector._enter_span()
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        end_ns = time.perf_counter_ns()
        self._collector._exit_span(self, end_ns)
        return False


class Collector:
    """Thread-safe telemetry sink.

    All mutation happens under one lock; per-thread nesting depth lives
    in a ``threading.local`` so concurrently open spans in different
    threads do not interfere.  Aggregates (``counters``, ``gauges``)
    are maintained alongside the raw event stream so a summary needs no
    replay.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch_ns = time.perf_counter_ns()
        self._events: list[Event] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}

    # -- internal helpers --------------------------------------------------
    def _us(self, t_ns: int) -> float:
        return (t_ns - self._epoch_ns) / 1e3

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    def _enter_span(self) -> int:
        depth = self._depth()
        self._local.depth = depth + 1
        return depth

    def _exit_span(self, sp: _Span, end_ns: int) -> None:
        self._local.depth = max(0, self._depth() - 1)
        t = threading.current_thread()
        ev = Event(
            kind="span",
            name=sp.name,
            ts_us=self._us(sp._start_ns),
            dur_us=(end_ns - sp._start_ns) / 1e3,
            value=0.0,
            thread=t.name,
            tid=t.ident or 0,
            depth=sp._depth,
            attrs=sp.attrs,
        )
        with self._lock:
            self._events.append(ev)

    @staticmethod
    def _key(name: str, labels: dict[str, Any]) -> str:
        if not labels:
            return name
        inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
        return f"{name}{{{inner}}}"

    # -- recording API -----------------------------------------------------
    def span(self, name: str, **attrs) -> _Span:
        """A context-manager span; enter starts the clock, exit records."""
        return _Span(self, name, attrs)

    def count(
        self,
        name: str,
        value: float = 1.0,
        extra: dict[str, Any] | None = None,
        **labels,
    ) -> None:
        """Accumulate *value* onto the counter ``name`` + *labels*.

        *labels* key the aggregate; *extra* attributes ride along on
        the event only (e.g. per-call detail like row bounds) without
        splitting the counter into per-call keys.
        """
        t = threading.current_thread()
        ev = Event(
            kind="counter",
            name=name,
            ts_us=self._us(time.perf_counter_ns()),
            dur_us=0.0,
            value=float(value),
            thread=t.name,
            tid=t.ident or 0,
            depth=self._depth(),
            attrs={**labels, **extra} if extra else labels,
        )
        key = self._key(name, labels)
        with self._lock:
            self._events.append(ev)
            self.counters[key] = self.counters.get(key, 0.0) + float(value)

    def gauge(self, name: str, value: float, **labels) -> None:
        """Record the current *value* of ``name`` (last write wins)."""
        t = threading.current_thread()
        ev = Event(
            kind="gauge",
            name=name,
            ts_us=self._us(time.perf_counter_ns()),
            dur_us=0.0,
            value=float(value),
            thread=t.name,
            tid=t.ident or 0,
            depth=self._depth(),
            attrs=labels,
        )
        key = self._key(name, labels)
        with self._lock:
            self._events.append(ev)
            self.gauges[key] = float(value)

    # -- cross-process ingestion -------------------------------------------
    @property
    def epoch_ns(self) -> int:
        """The ``perf_counter_ns`` instant that ``ts_us == 0`` maps to.

        Cross-process merging (:mod:`repro.obs.xproc`) needs it to
        rebase worker timestamps onto the parent's timeline.
        """
        return self._epoch_ns

    def ingest(
        self,
        events: Iterable[Event],
        counters: dict[str, float] | None = None,
        gauges: dict[str, float] | None = None,
    ) -> int:
        """Append externally-recorded *events* and fold in aggregates.

        Events are appended verbatim -- callers are responsible for
        rebasing ``ts_us`` onto this collector's epoch first (see
        :func:`repro.obs.xproc.ingest_payload`).  *counters*/*gauges*
        are the source collector's aggregate dicts: counter totals are
        summed into ours under the same string keys, gauges are
        last-write-wins.  Returns the number of events appended.
        """
        events = list(events)
        with self._lock:
            self._events.extend(events)
            if counters:
                for key, value in counters.items():
                    self.counters[key] = self.counters.get(key, 0.0) + float(
                        value
                    )
            if gauges:
                for key, value in gauges.items():
                    self.gauges[key] = float(value)
        return len(events)

    # -- inspection --------------------------------------------------------
    def snapshot(self) -> list[Event]:
        """A point-in-time copy of the event stream (safe to iterate)."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        """Drop all recorded events and aggregates (keep the epoch)."""
        with self._lock:
            self._events.clear()
            self.counters.clear()
            self.gauges.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


# ---------------------------------------------------------------------------
# Module-level surface: one attribute check when disabled.
# ---------------------------------------------------------------------------

_collector: Collector | None = None


def configure(enabled: bool = True) -> Collector | None:
    """Install a fresh :class:`Collector` (or disable telemetry).

    Returns the new collector (``None`` when disabling).
    """
    global _collector
    _collector = Collector() if enabled else None
    return _collector


def get_collector() -> Collector | None:
    """The active collector, or ``None`` when telemetry is disabled."""
    return _collector


def set_collector(collector: Collector | None) -> Collector | None:
    """Swap the active collector; returns the previous one.

    The swap-and-restore idiom keeps telemetry scoped::

        prev = set_collector(Collector())
        try:
            ...
        finally:
            set_collector(prev)
    """
    global _collector
    prev = _collector
    _collector = collector
    return prev


def enabled() -> bool:
    """True when a collector is installed."""
    return _collector is not None


def span(name: str, **attrs):
    """A span on the active collector, or the shared no-op span."""
    c = _collector
    if c is None:
        return NULL_SPAN
    return c.span(name, **attrs)


def count(
    name: str,
    value: float = 1.0,
    extra: dict[str, Any] | None = None,
    **labels,
) -> None:
    """Accumulate a counter on the active collector (no-op if disabled)."""
    c = _collector
    if c is not None:
        c.count(name, value, extra, **labels)


def gauge(name: str, value: float, **labels) -> None:
    """Record a gauge on the active collector (no-op if disabled)."""
    c = _collector
    if c is not None:
        c.gauge(name, value, **labels)


def traced(name: str | None = None) -> Callable:
    """Decorator wrapping a function call in a span.

    The collector is looked up *at call time*, so decorating a function
    costs nothing while telemetry stays disabled::

        @traced("encode.csr_du.unitize")
        def unitize(...): ...
    """

    def decorate(func: Callable) -> Callable:
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            c = _collector
            if c is None:
                return func(*args, **kwargs)
            with c.span(span_name):
                return func(*args, **kwargs)

        return wrapper

    return decorate
