"""Reference SpMV kernels -- the paper's pseudocode, line for line.

These are the ground truth the vectorized kernels and the cost model
are validated against.  They are pure Python (slow, tests-and-small-
matrices only) and deliberately mirror the listings in the paper:

* :func:`spmv_csr_reference` -- the CSR loop of Section II-B;
* :func:`spmv_csr_du_reference` -- Fig. 3 (ctl byte stream decode);
* :func:`spmv_csr_vi_reference` -- Fig. 5 (value indirection);
* :func:`spmv_dcsr_reference` -- the command-dispatch loop of [19].

Each kernel also returns an *operation census* via an optional
``counters`` dict: per-unit / per-command dispatch counts and per-class
element counts.  The machine cost model is defined over exactly these
counters, so the tests can pin the model to what the kernels really do.
"""

from __future__ import annotations

import numpy as np

from repro.compress.ctl import FLAG_NR, FLAG_RJMP, FLAG_SEQ
from repro.errors import EncodingError
from repro.formats.csr import CSRMatrix
from repro.formats.csr_du import CSRDUMatrix
from repro.formats.csr_vi import CSRVIMatrix
from repro.formats.dcsr import (
    CMD_DELTA8,
    CMD_DELTA16,
    CMD_DELTA32,
    CMD_NEWROW,
    CMD_ROWJMP,
    CMD_RUN8,
    DCSRMatrix,
)
from repro.util.bitops import WIDTH_BYTES, decode_varint


def spmv_csr_reference(
    matrix: CSRMatrix, x: np.ndarray, counters: dict | None = None
) -> np.ndarray:
    """The paper's CSR kernel (Section II-B)::

        for (i=0; i<N; i++)
            for (j=row_ptr[i]; j<row_ptr[i+1]; j++)
                y[i] += values[j]*x[col_ind[j]];

    With the paper's stated optimization of keeping ``y[i]`` in a
    register until the end of the inner loop.
    """
    row_ptr, col_ind, values = matrix.row_ptr, matrix.col_ind, matrix.values
    y = np.zeros(matrix.nrows, dtype=np.float64)
    rows = 0
    for i in range(matrix.nrows):
        acc = 0.0
        lo, hi = int(row_ptr[i]), int(row_ptr[i + 1])
        if lo != hi:
            rows += 1
        for j in range(lo, hi):
            acc += values[j] * x[col_ind[j]]
        y[i] = acc
    if counters is not None:
        counters["elements"] = matrix.nnz
        counters["rows"] = rows
    return y


def spmv_csr_du_reference(
    matrix: CSRDUMatrix, x: np.ndarray, counters: dict | None = None
) -> np.ndarray:
    """Fig. 3 of the paper: decode the ctl stream unit by unit.

    The structure matches the listing: read ``uflags``/``usize``, handle
    the new-row flag, add the ``ujmp`` distance, then run the per-class
    inner multiplication loop over the fixed-width deltas.
    """
    ctl = matrix.ctl
    values = matrix.values
    y = np.zeros(matrix.nrows, dtype=np.float64)
    pos = 0
    vidx = 0
    y_indx = -1
    x_indx = 0
    n = len(ctl)
    units = 0
    class_elems = [0, 0, 0, 0]
    while pos < n:
        if pos + 2 > n:
            raise EncodingError("truncated unit header")
        uflags = ctl[pos]
        usize = ctl[pos + 1]
        pos += 2
        units += 1
        if uflags & FLAG_NR:
            jump = 1
            if uflags & FLAG_RJMP:
                extra, pos = decode_varint(ctl, pos)
                jump += extra
            y_indx += jump
            x_indx = 0
        ujmp, pos = decode_varint(ctl, pos)
        x_indx += ujmp
        cls = uflags & 0x03
        width = WIDTH_BYTES[cls]
        class_elems[cls] += usize
        acc = y[y_indx]
        if uflags & FLAG_SEQ:
            stride, pos = decode_varint(ctl, pos)
            remaining = usize
            while True:
                acc += values[vidx] * x[x_indx]
                vidx += 1
                remaining -= 1
                if remaining == 0:
                    break
                x_indx += stride
        else:
            if pos + (usize - 1) * width > n:
                # A short slice below would silently read a smaller
                # delta instead of failing; reject the stream up front.
                raise EncodingError("truncated fixed-width run")
            remaining = usize
            while True:
                acc += values[vidx] * x[x_indx]
                vidx += 1
                remaining -= 1
                if remaining == 0:
                    break
                x_indx += int.from_bytes(ctl[pos : pos + width], "little")
                pos += width
        y[y_indx] = acc
    if vidx != values.size:
        raise EncodingError(f"decoded {vidx} elements, expected {values.size}")
    if counters is not None:
        counters["units"] = units
        counters["elements"] = vidx
        counters["class_elements"] = class_elems
    return y


def spmv_csr_vi_reference(
    matrix: CSRVIMatrix, x: np.ndarray, counters: dict | None = None
) -> np.ndarray:
    """Fig. 5 of the paper::

        for(i=0; i<N; i++)
            for(j=row_ptr[i]; j<row_ptr[i+1]; j++){
                val = vals_unique[val_ind[j]];
                y[i] += val*x[col_ind[j]];
            }
    """
    row_ptr, col_ind = matrix.row_ptr, matrix.col_ind
    vals_unique, val_ind = matrix.vals_unique, matrix.val_ind
    y = np.zeros(matrix.nrows, dtype=np.float64)
    for i in range(matrix.nrows):
        acc = 0.0
        for j in range(int(row_ptr[i]), int(row_ptr[i + 1])):
            val = vals_unique[val_ind[j]]
            acc += val * x[col_ind[j]]
        y[i] = acc
    if counters is not None:
        counters["elements"] = matrix.nnz
        counters["indirections"] = matrix.nnz
    return y


def spmv_dcsr_reference(
    matrix: DCSRMatrix, x: np.ndarray, counters: dict | None = None
) -> np.ndarray:
    """Command-dispatch SpMV over the DCSR stream of [19].

    Every iteration decodes one command byte and branches on it -- the
    fine-grained dispatch the paper's Section III-B identifies as
    DCSR's weakness.
    """
    stream = matrix.stream
    values = matrix.values
    y = np.zeros(matrix.nrows, dtype=np.float64)
    pos = 0
    vidx = 0
    row = -1
    col = 0
    n = len(stream)
    commands = 0
    while pos < n:
        cmd = stream[pos]
        pos += 1
        commands += 1
        if cmd == CMD_NEWROW:
            row += 1
            col = 0
        elif cmd == CMD_ROWJMP:
            extra, pos = decode_varint(stream, pos)
            row += 1 + extra
            col = 0
        elif cmd == CMD_DELTA8:
            col += stream[pos]
            pos += 1
            y[row] += values[vidx] * x[col]
            vidx += 1
        elif cmd == CMD_DELTA16:
            col += int.from_bytes(stream[pos : pos + 2], "little")
            pos += 2
            y[row] += values[vidx] * x[col]
            vidx += 1
        elif cmd == CMD_DELTA32:
            col += int.from_bytes(stream[pos : pos + 4], "little")
            pos += 4
            y[row] += values[vidx] * x[col]
            vidx += 1
        elif cmd == CMD_RUN8:
            length = stream[pos]
            pos += 1
            acc = y[row]
            for _ in range(length):
                col += stream[pos]
                pos += 1
                acc += values[vidx] * x[col]
                vidx += 1
            y[row] = acc
        else:
            raise EncodingError(f"unknown DCSR command {cmd}")
    if vidx != values.size:
        raise EncodingError(f"decoded {vidx} elements, expected {values.size}")
    if counters is not None:
        counters["commands"] = commands
        counters["elements"] = vidx
    return y
