"""SpMV kernels, in tiers, plus a registry keyed by (format, tier)."""

from repro.kernels.batched import spmv_csr_du_batched, spmv_csr_du_vi_batched
from repro.kernels.plan import (
    CSRDUPlan,
    CSRPlan,
    PLANNABLE_FORMATS,
    get_plan,
    has_plan,
)
from repro.kernels.reference import (
    spmv_csr_du_reference,
    spmv_csr_reference,
    spmv_csr_vi_reference,
    spmv_dcsr_reference,
)
from repro.kernels.registry import KernelSpec, available_kernels, get_kernel
from repro.kernels.vectorized import (
    spmv_csr_du_unitwise,
    spmv_csr_du_vi_vectorized,
    spmv_csr_vectorized,
    spmv_csr_vi_vectorized,
)

__all__ = [
    "spmv_csr_reference",
    "spmv_csr_du_reference",
    "spmv_csr_vi_reference",
    "spmv_dcsr_reference",
    "spmv_csr_vectorized",
    "spmv_csr_du_unitwise",
    "spmv_csr_vi_vectorized",
    "spmv_csr_du_vi_vectorized",
    "spmv_csr_du_batched",
    "spmv_csr_du_vi_batched",
    "CSRPlan",
    "CSRDUPlan",
    "PLANNABLE_FORMATS",
    "get_plan",
    "has_plan",
    "KernelSpec",
    "available_kernels",
    "get_kernel",
]
