"""Vectorized SpMV kernels (NumPy).

These are the kernels the real-clock benchmarks time.  They perform the
same logical work as the reference kernels but express the inner loops
as NumPy array operations:

* CSR: gather ``x[col_ind]``, multiply, segmented row reduction;
* CSR-DU *unitwise*: walk the ctl stream unit by unit, decoding each
  unit's deltas with one ``frombuffer`` + ``cumsum`` -- a true
  decode-on-the-fly kernel (nothing decoded is kept between calls);
* CSR-VI: one extra gather through ``val_ind``.

The formats' own ``spmv`` methods cache their structural decode across
calls (matching the iterative-solver scenario the paper times, where
decode cost amortizes); the functions here do not.
"""

from __future__ import annotations

import numpy as np

from repro.compress.ctl import FLAG_NR, FLAG_RJMP, FLAG_SEQ
from repro.errors import EncodingError, FormatError
from repro.formats.csr import CSRMatrix
from repro.formats.csr_du import CSRDUMatrix
from repro.formats.csr_du_vi import CSRDUVIMatrix
from repro.formats.csr_vi import CSRVIMatrix
from repro.nputil.segops import segmented_reduce
from repro.util.bitops import WIDTH_BYTES, WIDTH_DTYPES, decode_varint


def _check_x(x: np.ndarray, ncols: int) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (ncols,):
        raise FormatError(f"x has shape {x.shape}, expected ({ncols},)")
    return x


def spmv_csr_vectorized(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Gather / multiply / row-reduce CSR kernel."""
    x = _check_x(x, matrix.ncols)
    products = matrix.values * x[matrix.col_ind]
    return segmented_reduce(products, matrix.row_ptr.astype(np.int64))


def spmv_csr_vi_vectorized(matrix: CSRVIMatrix, x: np.ndarray) -> np.ndarray:
    """CSR-VI kernel: the Fig. 5 indirection as one extra gather."""
    x = _check_x(x, matrix.ncols)
    products = matrix.vals_unique[matrix.val_ind] * x[matrix.col_ind]
    return segmented_reduce(products, matrix.row_ptr.astype(np.int64))


def spmv_csr_du_unitwise(matrix: CSRDUMatrix, x: np.ndarray) -> np.ndarray:
    """CSR-DU kernel decoding the ctl stream on the fly, per unit.

    Python handles the per-unit header; NumPy handles each unit body
    (``frombuffer`` of the fixed-width deltas, ``cumsum`` for absolute
    columns, fused gather-multiply-sum).  This is the closest NumPy
    analogue of the paper's Fig. 3 kernel -- no decoded structure
    survives the call.
    """
    x = _check_x(x, matrix.ncols)
    ctl = matrix.ctl
    values = matrix.values
    y = np.zeros(matrix.nrows, dtype=np.float64)
    pos = 0
    vidx = 0
    row = -1
    col = 0
    n = len(ctl)
    while pos < n:
        uflags = ctl[pos]
        usize = ctl[pos + 1]
        pos += 2
        if uflags & FLAG_NR:
            jump = 1
            if uflags & FLAG_RJMP:
                extra, pos = decode_varint(ctl, pos)
                jump += extra
            row += jump
            col = 0
        ujmp, pos = decode_varint(ctl, pos)
        col += ujmp
        cls = uflags & 0x03
        width = WIDTH_BYTES[cls]
        body = usize - 1
        if uflags & FLAG_SEQ:
            stride, pos = decode_varint(ctl, pos)
            cols = col + stride * np.arange(usize, dtype=np.int64)
            col = int(cols[-1])
            y[row] += values[vidx : vidx + usize] @ x[cols]
        elif body:
            deltas = np.frombuffer(ctl, dtype=WIDTH_DTYPES[cls], count=body, offset=pos)
            pos += body * width
            cols = np.empty(usize, dtype=np.int64)
            cols[0] = col
            np.cumsum(deltas, out=cols[1:])
            cols[1:] += col
            col = int(cols[-1])
            y[row] += values[vidx : vidx + usize] @ x[cols]
        else:
            y[row] += values[vidx] * x[col]
        vidx += usize
    if vidx != values.size:
        raise EncodingError(f"decoded {vidx} elements, expected {values.size}")
    return y


def spmv_csr_du_vi_vectorized(matrix: CSRDUVIMatrix, x: np.ndarray) -> np.ndarray:
    """Combined format: cached unit decode + value-index gather."""
    x = _check_x(x, matrix.ncols)
    du = matrix.units
    products = matrix.vals_unique[matrix.val_ind] * x[du.columns]
    per_unit = segmented_reduce(products, du.offsets)
    y = np.zeros(matrix.nrows, dtype=np.float64)
    np.add.at(y, du.rows, per_unit)
    return y
