"""Vectorized SpMV kernels (NumPy).

These are the kernels the real-clock benchmarks time.  They perform the
same logical work as the reference kernels but express the inner loops
as NumPy array operations:

* CSR: gather ``x[col_ind]``, multiply, segmented row reduction (the
  ``int64`` row-pointer cast and offsets validation are cached on the
  matrix through its kernel plan, see :mod:`repro.kernels.plan`);
* CSR-DU *unitwise*: walk the ctl stream unit by unit, decoding each
  unit's deltas with one ``frombuffer`` + ``cumsum`` -- a true
  decode-on-the-fly kernel (nothing decoded is kept between calls);
* CSR-VI: one extra gather through ``val_ind``.

All CSR-DU kernels -- reference, unitwise, and the batched kernels in
:mod:`repro.kernels.batched` -- accumulate each row's products in
element order, so their results are *bit-identical*, not merely close.
The unitwise kernel realizes that order with a carried ``cumsum`` chain
per unit (``cumsum`` sums strictly left to right) instead of a ``dot``,
whose pairwise/SIMD order would diverge in the last bits.
"""

from __future__ import annotations

import numpy as np

from repro.compress.ctl import FLAG_NR, FLAG_RJMP, FLAG_SEQ
from repro.errors import EncodingError, FormatError
from repro.formats.csr import CSRMatrix
from repro.formats.csr_du import CSRDUMatrix
from repro.formats.csr_du_vi import CSRDUVIMatrix
from repro.formats.csr_vi import CSRVIMatrix
from repro.kernels.plan import get_plan
from repro.nputil.segops import segmented_reduce
from repro.util.bitops import WIDTH_BYTES, WIDTH_DTYPES, decode_varint


def _check_x(x: np.ndarray, ncols: int) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (ncols,):
        raise FormatError(f"x has shape {x.shape}, expected ({ncols},)")
    return x


def spmv_csr_vectorized(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Gather / multiply / row-reduce CSR kernel (plan-cached row_ptr)."""
    x = _check_x(x, matrix.ncols)
    return get_plan(matrix).spmv(matrix.values, x)


def spmv_csr_vi_vectorized(matrix: CSRVIMatrix, x: np.ndarray) -> np.ndarray:
    """CSR-VI kernel: the Fig. 5 indirection as one extra gather."""
    x = _check_x(x, matrix.ncols)
    return get_plan(matrix).spmv(matrix.vals_unique[matrix.val_ind], x)


def spmv_csr_du_unitwise(matrix: CSRDUMatrix, x: np.ndarray) -> np.ndarray:
    """CSR-DU kernel decoding the ctl stream on the fly, per unit.

    Python handles the per-unit header; NumPy handles each unit body
    (``frombuffer`` of the fixed-width deltas, ``cumsum`` for absolute
    columns, then a carried ``cumsum`` chain seeded with the row's
    running sum for the products).  This is the closest NumPy analogue
    of the paper's Fig. 3 kernel -- no decoded structure survives the
    call.
    """
    x = _check_x(x, matrix.ncols)
    ctl = matrix.ctl
    values = matrix.values
    y = np.zeros(matrix.nrows, dtype=np.float64)
    pos = 0
    vidx = 0
    row = -1
    col = 0
    n = len(ctl)
    chain = np.empty(257, dtype=np.float64)  # usize <= 255 products + carry
    while pos < n:
        if pos + 2 > n:
            raise EncodingError("truncated unit header")
        uflags = ctl[pos]
        usize = ctl[pos + 1]
        pos += 2
        if uflags & FLAG_NR:
            jump = 1
            if uflags & FLAG_RJMP:
                extra, pos = decode_varint(ctl, pos)
                jump += extra
            row += jump
            col = 0
        ujmp, pos = decode_varint(ctl, pos)
        col += ujmp
        cls = uflags & 0x03
        width = WIDTH_BYTES[cls]
        body = usize - 1
        if uflags & FLAG_SEQ:
            stride, pos = decode_varint(ctl, pos)
            cols = col + stride * np.arange(usize, dtype=np.int64)
            col = int(cols[-1])
        elif body:
            if pos + body * width > n:
                raise EncodingError("truncated fixed-width run")
            deltas = np.frombuffer(ctl, dtype=WIDTH_DTYPES[cls], count=body, offset=pos)
            pos += body * width
            cols = np.empty(usize, dtype=np.int64)
            cols[0] = col
            np.cumsum(deltas, out=cols[1:])
            cols[1:] += col
            col = int(cols[-1])
        else:
            y[row] += values[vidx] * x[col]
            vidx += 1
            continue
        # Sequential accumulation: seed with the row's running sum,
        # cumsum the products left to right (same order, same bits, as
        # the reference kernel's scalar loop).
        seg = chain[: usize + 1]
        seg[0] = y[row]
        np.multiply(values[vidx : vidx + usize], x[cols], out=seg[1:])
        y[row] = np.cumsum(seg)[-1]
        vidx += usize
    if vidx != values.size:
        raise EncodingError(f"decoded {vidx} elements, expected {values.size}")
    return y


def spmv_csr_du_vi_vectorized(matrix: CSRDUVIMatrix, x: np.ndarray) -> np.ndarray:
    """Combined format: cached unit decode + value-index gather."""
    x = _check_x(x, matrix.ncols)
    du = matrix.units
    products = matrix.vals_unique[matrix.val_ind] * x[du.columns]
    per_unit = segmented_reduce(products, du.offsets)
    y = np.zeros(matrix.nrows, dtype=np.float64)
    np.add.at(y, du.rows, per_unit)
    return y
