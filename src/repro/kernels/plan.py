"""Reusable kernel plans: per-matrix decode state for the hot SpMV path.

A *plan* is everything about one matrix's structure that every SpMV
iteration would otherwise recompute -- the ``int64`` cast of CSR's
``row_ptr``, the offsets validation behind the segmented row reduction,
and (for CSR-DU) the variable-length unit-header parse of the ctl
stream.  :func:`get_plan` builds the plan on first use, caches it on
the matrix object, and hands the cached instance back on every later
call; the batched kernels, the formats' ``spmv``/``spmm`` methods and
:class:`~repro.parallel.executor.ParallelSpMV` all share it.

Two plan families cover the four plannable formats:

* :class:`CSRPlan` (csr, csr-vi) -- cached ``row_ptr`` cast plus a
  pre-validated :class:`~repro.nputil.segops.SegmentedReducer`;
* :class:`CSRDUPlan` (csr-du, csr-du-vi) -- a
  :class:`~repro.compress.unit_table.BatchedColumnDecoder` over the
  scanned unit table, plus the per-nonzero row ids the row reduction
  scatters into.

Plans hold *structure only*; numerical values are passed in per call,
so a plan never pins a stale values array.  CSR-DU plans re-decode all
column indices from the ctl bytes on every call (decode-on-the-fly is
preserved -- see DESIGN.md, "Kernel plans").

The CSR-DU row reduction deliberately uses ``np.add.at`` (element
order, one scalar add per nonzero): that is bitwise identical to the
reference kernel's sequential per-row accumulation, which is what lets
the cross-kernel tests demand exact equality instead of tolerances.

Telemetry: ``plan.build`` span on construction, ``plan.miss`` /
``plan.hit`` counters on every lookup (labelled by format).
"""

from __future__ import annotations

import numpy as np

from repro.compress.unit_table import BatchedColumnDecoder, scan_units
from repro.errors import FormatError
from repro.nputil.segops import SegmentedReducer
from repro.telemetry import core as telemetry

#: Attribute under which the plan is cached on the matrix object.
PLAN_ATTR = "_kernel_plan"

#: Formats :func:`get_plan` can build a plan for.
PLANNABLE_FORMATS = ("csr", "csr-vi", "csr-du", "csr-du-vi")


def _check_x(x, ncols: int) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (ncols,):
        raise FormatError(f"x has shape {x.shape}, expected ({ncols},)")
    return x


def _check_xmat(X, ncols: int) -> np.ndarray:
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] != ncols:
        raise FormatError(f"X has shape {X.shape}, expected ({ncols}, k)")
    return X


class CSRPlan:
    """Plan for row-pointer formats (CSR, CSR-VI).

    Caches the ``int64`` ``row_ptr`` cast (previously re-done on every
    kernel call) and the validated segmented reducer over it.
    """

    __slots__ = ("nrows", "ncols", "nnz", "row_ptr64", "col_ind", "reducer")

    def __init__(self, nrows: int, ncols: int, row_ptr, col_ind):
        row_ptr = np.asarray(row_ptr)
        self.row_ptr64 = (
            row_ptr if row_ptr.dtype == np.int64 else row_ptr.astype(np.int64)
        )
        self.nrows = nrows
        self.ncols = ncols
        self.col_ind = col_ind
        self.nnz = int(col_ind.size)
        self.reducer = SegmentedReducer(self.row_ptr64, self.nnz)

    def spmv(self, values, x, out=None):
        products = values * x[self.col_ind]
        return self.reducer.reduce(products, out=out)

    def spmm(self, values, X, out=None):
        # All products materialize before `out` is written, so this path
        # is safe even when `out` aliases X (copy semantics); the looped
        # base-class spmm rejects aliasing instead (see
        # formats.base.check_out_aliasing).
        products = values[:, None] * X[self.col_ind]
        return self.reducer.reduce(products, out=out)


class CSRDUPlan:
    """Plan for delta-unit formats (CSR-DU, CSR-DU-VI).

    Built from the ctl stream alone: one header scan (skipped when the
    batched encoder already produced the unit table), one batched
    column decoder, and the per-nonzero row ids.  Each :meth:`spmv`
    re-decodes the column indices from the ctl bytes (width-class
    batched) and reduces per row in element order.
    """

    __slots__ = ("nrows", "ncols", "nnz", "table", "decoder", "elem_rows")

    def __init__(self, nrows: int, ncols: int, ctl: bytes, nnz: int, table=None):
        if table is None:
            table = scan_units(ctl)
        decoder = BatchedColumnDecoder(ctl, table, nnz)
        if table.nunits and int(table.rows[-1]) >= nrows:
            raise FormatError(
                f"ctl stream reaches row {int(table.rows[-1])} "
                f"but the matrix has {nrows} rows"
            )
        if table.nunits and int(decoder.last_cols.max()) >= ncols:
            raise FormatError("ctl stream reaches a column beyond ncols")
        self.nrows = nrows
        self.ncols = ncols
        self.nnz = nnz
        self.table = table
        self.decoder = decoder
        self.elem_rows = np.repeat(table.rows, table.sizes)

    def spmv(self, values, x, out=None):
        cols = self.decoder.columns()
        products = values * x[cols]
        if out is None:
            out = np.zeros(self.nrows, dtype=np.float64)
        else:
            out[...] = 0.0
        # One scalar add per nonzero, in element order == the reference
        # kernel's accumulation order, bit for bit.
        np.add.at(out, self.elem_rows, products)
        return out

    def spmm(self, values, X, out=None):
        cols = self.decoder.columns()
        # As in CSRPlan.spmm: products materialize first, so an out=
        # buffer aliasing X still gets the right answer.
        products = values[:, None] * X[cols]
        if out is None:
            out = np.empty((self.nrows, X.shape[1]), dtype=np.float64)
        out[...] = 0.0
        # Column-at-a-time keeps each right-hand side's accumulation
        # order identical to spmv's; the decode above is shared.
        for j in range(X.shape[1]):
            np.add.at(out[:, j], self.elem_rows, products[:, j])
        return out


def _build_plan(matrix):
    name = matrix.name
    if name in ("csr", "csr-vi"):
        return CSRPlan(matrix.nrows, matrix.ncols, matrix.row_ptr, matrix.col_ind)
    if name in ("csr-du", "csr-du-vi"):
        # The batched encoder emits the unit table as a byproduct; a
        # matrix carrying one skips the per-unit header re-scan here.
        return CSRDUPlan(
            matrix.nrows,
            matrix.ncols,
            matrix.ctl,
            matrix.nnz,
            table=getattr(matrix, "_unit_table", None),
        )
    raise FormatError(
        f"no kernel plan for format {name!r}; plannable: {PLANNABLE_FORMATS}"
    )


def has_plan(matrix) -> bool:
    """True if *matrix* already carries a cached plan."""
    return getattr(matrix, PLAN_ATTR, None) is not None


def get_plan(matrix):
    """The matrix's kernel plan, building and caching it on first use."""
    plan = getattr(matrix, PLAN_ATTR, None)
    if plan is not None:
        telemetry.count("plan.hit", 1, format=matrix.name)
        return plan
    telemetry.count("plan.miss", 1, format=matrix.name)
    with telemetry.span("plan.build", format=matrix.name) as sp:
        plan = _build_plan(matrix)
        sp.add(nnz=plan.nnz)
    setattr(matrix, PLAN_ATTR, plan)
    return plan
