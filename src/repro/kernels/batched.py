"""Width-class batched CSR-DU kernels.

These kernels decode the ctl stream through a cached
:class:`~repro.kernels.plan.CSRDUPlan`: the O(#units) Python header
loop of :func:`~repro.kernels.vectorized.spmv_csr_du_unitwise` is paid
once at plan build, after which every call decodes all column indices
with O(#width-classes) NumPy passes and reduces per row with one
``np.add.at``.  The accumulation order is element order within each
row, so the result is bit-identical to both the unitwise kernel and
the paper's reference kernel -- the cross-kernel tests assert exact
equality, not tolerances.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr_du import CSRDUMatrix
from repro.formats.csr_du_vi import CSRDUVIMatrix
from repro.kernels.plan import _check_x, get_plan


def spmv_csr_du_batched(matrix: CSRDUMatrix, x: np.ndarray) -> np.ndarray:
    """CSR-DU SpMV via the width-class batched decoder (plan-cached)."""
    x = _check_x(x, matrix.ncols)
    return get_plan(matrix).spmv(matrix.values, x)


def spmv_csr_du_vi_batched(matrix: CSRDUVIMatrix, x: np.ndarray) -> np.ndarray:
    """CSR-DU-VI SpMV: batched index decode plus the value-index gather."""
    x = _check_x(x, matrix.ncols)
    values = matrix.vals_unique[matrix.val_ind]
    return get_plan(matrix).spmv(values, x)
