"""Kernel registry: look SpMV kernels up by format name and tier.

Tiers:

* ``"reference"`` -- pure Python, the paper's listings (ground truth);
* ``"vectorized"`` -- NumPy, decode-on-the-fly where the format is
  compressed;
* ``"batched"`` -- plan-cached kernels (:mod:`repro.kernels.plan`):
  width-class batched ctl decode for CSR-DU/CSR-DU-VI, cached
  row-pointer reduction for CSR/CSR-VI;
* ``"cached"`` -- the format's own :meth:`spmv` (structural decode
  cached across calls; the iterative-use default -- plan-based for the
  four plannable formats).

``get_kernel(format_name, tier)`` returns a uniform
``kernel(matrix, x) -> y`` callable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import FormatError
from repro.kernels import batched as _bat
from repro.kernels import reference as _ref
from repro.kernels import vectorized as _vec


@dataclass(frozen=True)
class KernelSpec:
    """A registered kernel: its identity plus the callable."""

    format_name: str
    tier: str
    func: Callable

    def __call__(self, matrix, x: np.ndarray) -> np.ndarray:
        return self.func(matrix, x)


def _cached(matrix, x):
    return matrix.spmv(x)


_KERNELS: dict[tuple[str, str], Callable] = {
    ("csr", "reference"): _ref.spmv_csr_reference,
    ("csr", "vectorized"): _vec.spmv_csr_vectorized,
    ("csr-du", "reference"): _ref.spmv_csr_du_reference,
    ("csr-du", "vectorized"): _vec.spmv_csr_du_unitwise,
    ("csr-vi", "reference"): _ref.spmv_csr_vi_reference,
    ("csr-vi", "vectorized"): _vec.spmv_csr_vi_vectorized,
    ("csr-du-vi", "vectorized"): _vec.spmv_csr_du_vi_vectorized,
    ("dcsr", "reference"): _ref.spmv_dcsr_reference,
    # Plan-cached tier.  For the row-pointer formats the vectorized
    # kernels already run through the plan, so the tier is an alias;
    # for the delta-unit formats it is the width-class batched decode.
    ("csr", "batched"): _vec.spmv_csr_vectorized,
    ("csr-vi", "batched"): _vec.spmv_csr_vi_vectorized,
    ("csr-du", "batched"): _bat.spmv_csr_du_batched,
    ("csr-du-vi", "batched"): _bat.spmv_csr_du_vi_batched,
}

# Every registered format supports the "cached" tier through its spmv().
for _name in (
    "coo",
    "csr",
    "csc",
    "csr-du",
    "csr-vi",
    "csr-du-vi",
    "dcsr",
    "bcsr",
    "ell",
    "jds",
):
    _KERNELS[(_name, "cached")] = _cached


#: Tier order walked by guarded execution: a decode failure at one tier
#: re-runs on the next (cheapest-first; "reference" is the ground-truth
#: terminus).  Tiers a format does not register are skipped.
FALLBACK_ORDER: tuple[str, ...] = ("batched", "vectorized", "reference")


def fallback_chain(
    format_name: str, start_tier: str = "batched"
) -> tuple[KernelSpec, ...]:
    """The format's guarded-execution chain, from *start_tier* down.

    Raises :class:`~repro.errors.FormatError` for an unknown start tier
    or a format with no tier at or below it.
    """
    if start_tier not in FALLBACK_ORDER:
        raise FormatError(
            f"unknown fallback start tier {start_tier!r}; "
            f"order is {FALLBACK_ORDER}"
        )
    idx = FALLBACK_ORDER.index(start_tier)
    chain = tuple(
        get_kernel(format_name, tier)
        for tier in FALLBACK_ORDER[idx:]
        if (format_name, tier) in _KERNELS
    )
    if not chain:
        raise FormatError(
            f"format {format_name!r} has no kernels at or below tier "
            f"{start_tier!r}"
        )
    return chain


def get_kernel(format_name: str, tier: str = "cached") -> KernelSpec:
    """Look up a kernel; raises :class:`~repro.errors.FormatError` if absent.

    The synthetic ``"guarded"`` tier wraps the format's fallback chain
    (:func:`fallback_chain`) in a :class:`~repro.robust.guard.
    GuardedKernel`: decode-time failures degrade to the next tier
    instead of aborting the cell.
    """
    if tier == "guarded":
        # Imported lazily: robust.guard imports this module.
        from repro.robust.guard import GuardedKernel

        return KernelSpec(
            format_name=format_name,
            tier="guarded",
            func=GuardedKernel(format_name),
        )
    try:
        func = _KERNELS[(format_name, tier)]
    except KeyError:
        raise FormatError(
            f"no kernel for format {format_name!r} at tier {tier!r}; "
            f"available: {sorted(_KERNELS)}"
        ) from None
    return KernelSpec(format_name=format_name, tier=tier, func=func)


def available_kernels() -> tuple[tuple[str, str], ...]:
    """All registered ``(format, tier)`` pairs, sorted."""
    return tuple(sorted(_KERNELS))
