"""Kernel registry: look SpMV kernels up by format name and tier.

Tiers:

* ``"reference"`` -- pure Python, the paper's listings (ground truth);
* ``"vectorized"`` -- NumPy, decode-on-the-fly where the format is
  compressed;
* ``"batched"`` -- plan-cached kernels (:mod:`repro.kernels.plan`):
  width-class batched ctl decode for CSR-DU/CSR-DU-VI, cached
  row-pointer reduction for CSR/CSR-VI;
* ``"cached"`` -- the format's own :meth:`spmv` (structural decode
  cached across calls; the iterative-use default -- plan-based for the
  four plannable formats).

``get_kernel(format_name, tier)`` returns a uniform
``kernel(matrix, x) -> y`` callable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import FormatError
from repro.kernels import batched as _bat
from repro.kernels import reference as _ref
from repro.kernels import vectorized as _vec


@dataclass(frozen=True)
class KernelSpec:
    """A registered kernel: its identity plus the callable."""

    format_name: str
    tier: str
    func: Callable

    def __call__(self, matrix, x: np.ndarray) -> np.ndarray:
        return self.func(matrix, x)


def _cached(matrix, x):
    return matrix.spmv(x)


_KERNELS: dict[tuple[str, str], Callable] = {
    ("csr", "reference"): _ref.spmv_csr_reference,
    ("csr", "vectorized"): _vec.spmv_csr_vectorized,
    ("csr-du", "reference"): _ref.spmv_csr_du_reference,
    ("csr-du", "vectorized"): _vec.spmv_csr_du_unitwise,
    ("csr-vi", "reference"): _ref.spmv_csr_vi_reference,
    ("csr-vi", "vectorized"): _vec.spmv_csr_vi_vectorized,
    ("csr-du-vi", "vectorized"): _vec.spmv_csr_du_vi_vectorized,
    ("dcsr", "reference"): _ref.spmv_dcsr_reference,
    # Plan-cached tier.  For the row-pointer formats the vectorized
    # kernels already run through the plan, so the tier is an alias;
    # for the delta-unit formats it is the width-class batched decode.
    ("csr", "batched"): _vec.spmv_csr_vectorized,
    ("csr-vi", "batched"): _vec.spmv_csr_vi_vectorized,
    ("csr-du", "batched"): _bat.spmv_csr_du_batched,
    ("csr-du-vi", "batched"): _bat.spmv_csr_du_vi_batched,
}

# Every registered format supports the "cached" tier through its spmv().
for _name in (
    "coo",
    "csr",
    "csc",
    "csr-du",
    "csr-vi",
    "csr-du-vi",
    "dcsr",
    "bcsr",
    "ell",
    "jds",
):
    _KERNELS[(_name, "cached")] = _cached


def get_kernel(format_name: str, tier: str = "cached") -> KernelSpec:
    """Look up a kernel; raises :class:`~repro.errors.FormatError` if absent."""
    try:
        func = _KERNELS[(format_name, tier)]
    except KeyError:
        raise FormatError(
            f"no kernel for format {format_name!r} at tier {tier!r}; "
            f"available: {sorted(_KERNELS)}"
        ) from None
    return KernelSpec(format_name=format_name, tier=tier, func=func)


def available_kernels() -> tuple[tuple[str, str], ...]:
    """All registered ``(format, tier)`` pairs, sorted."""
    return tuple(sorted(_KERNELS))
