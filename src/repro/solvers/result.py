"""Common result type for the iterative solvers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SolveResult:
    """Outcome of an iterative solve.

    Attributes
    ----------
    x:
        The computed solution (or eigenvector for power iteration).
    iterations:
        Iterations performed.
    residual:
        Final residual norm (for power iteration: eigenvalue estimate
        change at the last step).
    converged:
        Whether the tolerance was met within the iteration budget.
    spmv_calls:
        Number of SpMV invocations consumed -- the quantity the paper's
        optimization actually accelerates.
    """

    x: np.ndarray
    iterations: int
    residual: float
    converged: bool
    spmv_calls: int
