"""Conjugate Gradient for symmetric positive definite systems."""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, FormatError
from repro.formats.base import SparseMatrix
from repro.solvers.result import SolveResult


def conjugate_gradient(
    A: SparseMatrix,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    maxiter: int | None = None,
    raise_on_fail: bool = False,
) -> SolveResult:
    """Solve ``A x = b`` with (unpreconditioned) CG.

    *A* must be symmetric positive definite; this is not checked (it
    would cost more than the solve) but a non-SPD matrix shows up as
    stagnation or a negative curvature ``p' A p``, which raises.

    ``tol`` is relative: convergence when ``||r|| <= tol * ||b||``.
    """
    nrows, ncols = A.shape
    if nrows != ncols:
        raise FormatError(f"CG needs a square matrix, got {A.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (nrows,):
        raise FormatError(f"b has shape {b.shape}, expected ({nrows},)")
    maxiter = maxiter if maxiter is not None else max(50, 10 * nrows)
    x = (
        np.zeros(nrows)
        if x0 is None
        else np.array(x0, dtype=np.float64, copy=True)
    )
    spmv_calls = 0
    if x0 is None:
        r = b.copy()
    else:
        r = b - A.spmv(x)
        spmv_calls += 1
    bnorm = float(np.linalg.norm(b)) or 1.0
    rnorm = float(np.linalg.norm(r))
    if rnorm <= tol * bnorm:
        return SolveResult(x=x, iterations=0, residual=rnorm, converged=True, spmv_calls=spmv_calls)
    p = r.copy()
    rs = rnorm * rnorm
    for k in range(1, maxiter + 1):
        Ap = A.spmv(p)
        spmv_calls += 1
        curvature = float(p @ Ap)
        if curvature <= 0:
            raise ConvergenceError(
                f"non-positive curvature at iteration {k}: matrix not SPD",
                iterations=k,
                residual=float(np.sqrt(rs)),
            )
        alpha = rs / curvature
        x += alpha * p
        r -= alpha * Ap
        rs_new = float(r @ r)
        rnorm = float(np.sqrt(rs_new))
        if rnorm <= tol * bnorm:
            return SolveResult(
                x=x, iterations=k, residual=rnorm, converged=True, spmv_calls=spmv_calls
            )
        p = r + (rs_new / rs) * p
        rs = rs_new
    if raise_on_fail:
        raise ConvergenceError(
            f"CG did not converge in {maxiter} iterations",
            iterations=maxiter,
            residual=rnorm,
        )
    return SolveResult(
        x=x, iterations=maxiter, residual=rnorm, converged=False, spmv_calls=spmv_calls
    )


def preconditioned_cg(
    A: SparseMatrix,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    maxiter: int | None = None,
) -> SolveResult:
    """CG with a Jacobi (diagonal) preconditioner.

    ``M = diag(A)``: nearly free per iteration, and for the stiff
    variable-coefficient systems the paper's FEM matrices come from it
    cuts the iteration count -- fewer iterations x cheaper SpMV is the
    full compression payoff chain.
    """
    from repro.solvers.jacobi import _diagonal

    nrows, ncols = A.shape
    if nrows != ncols:
        raise FormatError(f"CG needs a square matrix, got {A.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (nrows,):
        raise FormatError(f"b has shape {b.shape}, expected ({nrows},)")
    diag = _diagonal(A)
    if np.any(diag <= 0):
        raise ConvergenceError(
            "Jacobi-preconditioned CG requires a positive diagonal",
            iterations=0,
            residual=float("inf"),
        )
    inv_diag = 1.0 / diag
    maxiter = maxiter if maxiter is not None else max(50, 10 * nrows)
    x = np.zeros(nrows) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    spmv_calls = 0
    if x0 is None:
        r = b.copy()
    else:
        r = b - A.spmv(x)
        spmv_calls += 1
    bnorm = float(np.linalg.norm(b)) or 1.0
    rnorm = float(np.linalg.norm(r))
    if rnorm <= tol * bnorm:
        return SolveResult(x=x, iterations=0, residual=rnorm, converged=True, spmv_calls=spmv_calls)
    z = inv_diag * r
    p = z.copy()
    rz = float(r @ z)
    for k in range(1, maxiter + 1):
        Ap = A.spmv(p)
        spmv_calls += 1
        curvature = float(p @ Ap)
        if curvature <= 0:
            raise ConvergenceError(
                f"non-positive curvature at iteration {k}: matrix not SPD",
                iterations=k,
                residual=rnorm,
            )
        alpha = rz / curvature
        x += alpha * p
        r -= alpha * Ap
        rnorm = float(np.linalg.norm(r))
        if rnorm <= tol * bnorm:
            return SolveResult(
                x=x, iterations=k, residual=rnorm, converged=True, spmv_calls=spmv_calls
            )
        z = inv_diag * r
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new
    return SolveResult(
        x=x, iterations=maxiter, residual=rnorm, converged=False, spmv_calls=spmv_calls
    )
