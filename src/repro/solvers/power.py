"""Power iteration (dominant eigenpair; PageRank-style workloads).

The paper's conclusion points at "graph or database algorithms" as the
broader class its compression methodology serves -- power iteration
over a web-graph adjacency matrix (PageRank) is the canonical example,
and :mod:`examples/graph_ranking.py` uses this solver on the catalog's
power-law matrices.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix
from repro.solvers.result import SolveResult


def power_iteration(
    A: SparseMatrix,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    maxiter: int = 1000,
    seed: int = 0,
) -> SolveResult:
    """Dominant eigenvector of *A* by normalized power iteration.

    Returns the eigenvector in ``x``; ``residual`` is
    ``||A x - lambda x||`` at exit.  Convergence requires a dominant
    eigenvalue separated from the rest -- plain graphs usually qualify.
    """
    nrows, ncols = A.shape
    if nrows != ncols:
        raise FormatError(f"power iteration needs a square matrix, got {A.shape}")
    if nrows == 0:
        raise FormatError("matrix is empty")
    if x0 is None:
        rng = np.random.default_rng(seed)
        x = rng.random(nrows) + 0.1
    else:
        x = np.array(x0, dtype=np.float64, copy=True)
    x /= np.linalg.norm(x)
    lam = 0.0
    spmv_calls = 0
    for k in range(1, maxiter + 1):
        y = A.spmv(x)
        spmv_calls += 1
        lam_new = float(x @ y)
        norm = float(np.linalg.norm(y))
        if norm == 0.0:
            # x is in the null space; the zero vector is a fixed point.
            return SolveResult(
                x=x, iterations=k, residual=0.0, converged=True, spmv_calls=spmv_calls
            )
        y /= norm
        resid = float(np.linalg.norm(A.spmv(y) - lam_new * y))
        spmv_calls += 1
        if abs(lam_new - lam) <= tol * max(1.0, abs(lam_new)) and resid <= tol * max(
            1.0, abs(lam_new)
        ):
            return SolveResult(
                x=y, iterations=k, residual=resid, converged=True, spmv_calls=spmv_calls
            )
        x, lam = y, lam_new
    return SolveResult(
        x=x,
        iterations=maxiter,
        residual=float(np.linalg.norm(A.spmv(x) - lam * x)),
        converged=False,
        spmv_calls=spmv_calls + 1,
    )
