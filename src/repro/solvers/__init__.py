"""Iterative solvers built on the public SpMV API.

The paper motivates SpMV as "the basic operation of iterative solvers,
such as Conjugate Gradient (CG) and Generalized Minimum Residual
(GMRES)" (Section I).  These implementations consume any
:class:`~repro.formats.base.SparseMatrix` -- compressed formats drop in
transparently, which is exactly the deployment story of CSR-DU/CSR-VI:
encode once, iterate many times.
"""

from repro.solvers.bicgstab import bicgstab
from repro.solvers.cg import conjugate_gradient, preconditioned_cg
from repro.solvers.gmres import gmres
from repro.solvers.jacobi import jacobi
from repro.solvers.power import power_iteration
from repro.solvers.result import SolveResult

__all__ = [
    "bicgstab",
    "conjugate_gradient",
    "preconditioned_cg",
    "gmres",
    "jacobi",
    "power_iteration",
    "SolveResult",
]
