"""BiCGSTAB for general (non-symmetric) systems.

Rounds out the solver suite: CG covers SPD, GMRES covers general with a
memory cost growing in the restart length, BiCGSTAB covers general with
constant memory -- two SpMV calls per iteration, which doubles the
leverage of the paper's per-SpMV byte savings.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix
from repro.solvers.result import SolveResult

#: Breakdown guard on the BiCG inner products.
_EPS = 1e-30


def bicgstab(
    A: SparseMatrix,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    maxiter: int = 10_000,
) -> SolveResult:
    """Solve ``A x = b`` with BiCGSTAB (van der Vorst).

    Stops on ``||r|| <= tol * ||b||``; returns ``converged=False`` on
    iteration exhaustion or numerical breakdown (``rho -> 0``), with the
    best iterate reached.
    """
    nrows, ncols = A.shape
    if nrows != ncols:
        raise FormatError(f"BiCGSTAB needs a square matrix, got {A.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (nrows,):
        raise FormatError(f"b has shape {b.shape}, expected ({nrows},)")
    x = np.zeros(nrows) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    spmv_calls = 0
    if x0 is None:
        r = b.copy()
    else:
        r = b - A.spmv(x)
        spmv_calls += 1
    bnorm = float(np.linalg.norm(b)) or 1.0
    rnorm = float(np.linalg.norm(r))
    if rnorm <= tol * bnorm:
        return SolveResult(x=x, iterations=0, residual=rnorm, converged=True, spmv_calls=spmv_calls)
    r_hat = r.copy()
    rho_old = alpha = omega = 1.0
    v = np.zeros(nrows)
    p = np.zeros(nrows)
    for k in range(1, maxiter + 1):
        rho = float(r_hat @ r)
        if abs(rho) < _EPS:
            break  # breakdown: restart would be needed
        if k == 1:
            p = r.copy()
        else:
            beta = (rho / rho_old) * (alpha / omega)
            p = r + beta * (p - omega * v)
        v = A.spmv(p)
        spmv_calls += 1
        denom = float(r_hat @ v)
        if abs(denom) < _EPS:
            break
        alpha = rho / denom
        s = r - alpha * v
        snorm = float(np.linalg.norm(s))
        if snorm <= tol * bnorm:
            x += alpha * p
            return SolveResult(
                x=x, iterations=k, residual=snorm, converged=True, spmv_calls=spmv_calls
            )
        t = A.spmv(s)
        spmv_calls += 1
        tt = float(t @ t)
        if tt < _EPS:
            break
        omega = float(t @ s) / tt
        x += alpha * p + omega * s
        r = s - omega * t
        rnorm = float(np.linalg.norm(r))
        if rnorm <= tol * bnorm:
            return SolveResult(
                x=x, iterations=k, residual=rnorm, converged=True, spmv_calls=spmv_calls
            )
        if abs(omega) < _EPS:
            break
        rho_old = rho
    return SolveResult(
        x=x,
        iterations=min(k, maxiter),
        residual=rnorm,
        converged=False,
        spmv_calls=spmv_calls,
    )
