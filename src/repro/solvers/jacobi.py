"""Jacobi (diagonal-preconditioned fixed-point) iteration."""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, FormatError
from repro.formats.base import SparseMatrix
from repro.formats.conversions import to_csr
from repro.solvers.result import SolveResult


def _diagonal(A: SparseMatrix) -> np.ndarray:
    csr = to_csr(A)
    diag = np.zeros(csr.nrows)
    rows = csr.row_of_entry()
    on_diag = rows == csr.col_ind
    diag[rows[on_diag]] = csr.values[on_diag]
    return diag


def jacobi(
    A: SparseMatrix,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    maxiter: int = 10_000,
    omega: float = 1.0,
) -> SolveResult:
    """Solve ``A x = b`` with (weighted) Jacobi iteration.

    ``x <- x + omega * D^-1 (b - A x)``.  Converges for diagonally
    dominant matrices; stops on ``||r|| <= tol * ||b||``.
    """
    nrows, ncols = A.shape
    if nrows != ncols:
        raise FormatError(f"Jacobi needs a square matrix, got {A.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (nrows,):
        raise FormatError(f"b has shape {b.shape}, expected ({nrows},)")
    diag = _diagonal(A)
    if np.any(diag == 0):
        raise ConvergenceError(
            "Jacobi requires a zero-free diagonal", iterations=0, residual=float("inf")
        )
    x = np.zeros(nrows) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    bnorm = float(np.linalg.norm(b)) or 1.0
    spmv_calls = 0
    rnorm = float("inf")
    for k in range(1, maxiter + 1):
        r = b - A.spmv(x)
        spmv_calls += 1
        rnorm = float(np.linalg.norm(r))
        if rnorm <= tol * bnorm:
            return SolveResult(
                x=x, iterations=k - 1, residual=rnorm, converged=True, spmv_calls=spmv_calls
            )
        x += omega * r / diag
    return SolveResult(
        x=x, iterations=maxiter, residual=rnorm, converged=False, spmv_calls=spmv_calls
    )
