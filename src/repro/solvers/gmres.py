"""Restarted GMRES (Generalized Minimum Residual) for general systems."""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix
from repro.solvers.result import SolveResult


def gmres(
    A: SparseMatrix,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    restart: int = 30,
    maxiter: int = 1000,
) -> SolveResult:
    """Solve ``A x = b`` with GMRES(restart).

    Arnoldi with modified Gram-Schmidt; the least-squares problem on
    the Hessenberg matrix is solved with Givens rotations so the
    residual norm is tracked for free.  ``maxiter`` counts total inner
    iterations (SpMV calls in the Arnoldi loop).
    """
    nrows, ncols = A.shape
    if nrows != ncols:
        raise FormatError(f"GMRES needs a square matrix, got {A.shape}")
    if restart < 1:
        raise FormatError(f"restart must be >= 1, got {restart}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (nrows,):
        raise FormatError(f"b has shape {b.shape}, expected ({nrows},)")
    x = np.zeros(nrows) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    bnorm = float(np.linalg.norm(b)) or 1.0
    spmv_calls = 0
    total_inner = 0

    while total_inner < maxiter:
        r = b - A.spmv(x)
        spmv_calls += 1
        beta = float(np.linalg.norm(r))
        if beta <= tol * bnorm:
            return SolveResult(
                x=x, iterations=total_inner, residual=beta, converged=True,
                spmv_calls=spmv_calls,
            )
        m = min(restart, maxiter - total_inner)
        V = np.zeros((m + 1, nrows))
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        V[0] = r / beta
        g[0] = beta
        k_done = 0
        for k in range(m):
            w = A.spmv(V[k])
            spmv_calls += 1
            total_inner += 1
            for i in range(k + 1):  # modified Gram-Schmidt
                H[i, k] = float(w @ V[i])
                w -= H[i, k] * V[i]
            H[k + 1, k] = float(np.linalg.norm(w))
            if H[k + 1, k] > 1e-14:
                V[k + 1] = w / H[k + 1, k]
            # Apply previous Givens rotations to the new column.
            for i in range(k):
                t = cs[i] * H[i, k] + sn[i] * H[i + 1, k]
                H[i + 1, k] = -sn[i] * H[i, k] + cs[i] * H[i + 1, k]
                H[i, k] = t
            denom = float(np.hypot(H[k, k], H[k + 1, k]))
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k], sn[k] = H[k, k] / denom, H[k + 1, k] / denom
            H[k, k] = cs[k] * H[k, k] + sn[k] * H[k + 1, k]
            H[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            k_done = k + 1
            if abs(g[k + 1]) <= tol * bnorm:
                break
        # Back-substitute the upper-triangular system H[:k_done,:k_done].
        y = np.zeros(k_done)
        for i in range(k_done - 1, -1, -1):
            y[i] = (g[i] - H[i, i + 1 : k_done] @ y[i + 1 :]) / H[i, i]
        x += V[:k_done].T @ y
        if abs(g[k_done]) <= tol * bnorm:
            r = b - A.spmv(x)
            spmv_calls += 1
            return SolveResult(
                x=x,
                iterations=total_inner,
                residual=float(np.linalg.norm(r)),
                converged=True,
                spmv_calls=spmv_calls,
            )
    r = b - A.spmv(x)
    spmv_calls += 1
    rnorm = float(np.linalg.norm(r))
    return SolveResult(
        x=x,
        iterations=total_inner,
        residual=rnorm,
        converged=bool(rnorm <= tol * bnorm),
        spmv_calls=spmv_calls,
    )
