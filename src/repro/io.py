"""Persistence: save/load any format to a single ``.npz`` file.

Compressed formats exist to be encoded once and reused across many
solver runs; this module makes the encoded form durable.  Each format
serializes its *actual* storage arrays (the ctl byte stream, val_ind at
its native width, ...), so a saved CSR-DU file is as small as the
in-memory format and loads without re-encoding.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError
from repro.formats.bcsr import BCSRMatrix
from repro.formats.base import SparseMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.csr_du import CSRDUMatrix
from repro.formats.csr_du_vi import CSRDUVIMatrix
from repro.formats.csr_vi import CSRVIMatrix
from repro.formats.dcsr import DCSRMatrix
from repro.formats.ellpack import ELLMatrix
from repro.formats.jagged import JDSMatrix

_MAGIC = "repro-sparse-v1"


def save_matrix(matrix: SparseMatrix, path) -> None:
    """Serialize *matrix* (any registered format) to ``path`` (.npz)."""
    name = type(matrix).name
    arrays: dict[str, np.ndarray] = {
        "__magic__": np.array(_MAGIC),
        "__format__": np.array(name),
        "__shape__": np.array(matrix.shape, dtype=np.int64),
    }
    if isinstance(matrix, COOMatrix):
        arrays.update(rows=matrix.rows, cols=matrix.cols, values=matrix.values)
    elif isinstance(matrix, CSRMatrix):
        arrays.update(
            row_ptr=matrix.row_ptr, col_ind=matrix.col_ind, values=matrix.values
        )
    elif isinstance(matrix, CSCMatrix):
        arrays.update(
            col_ptr=matrix.col_ptr, row_ind=matrix.row_ind, values=matrix.values
        )
    elif isinstance(matrix, CSRDUMatrix):
        arrays.update(
            ctl=np.frombuffer(matrix.ctl, dtype=np.uint8), values=matrix.values
        )
    elif isinstance(matrix, CSRVIMatrix):
        arrays.update(
            row_ptr=matrix.row_ptr,
            col_ind=matrix.col_ind,
            vals_unique=matrix.vals_unique,
            val_ind=matrix.val_ind,
        )
    elif isinstance(matrix, CSRDUVIMatrix):
        arrays.update(
            ctl=np.frombuffer(matrix.ctl, dtype=np.uint8),
            vals_unique=matrix.vals_unique,
            val_ind=matrix.val_ind,
        )
    elif isinstance(matrix, DCSRMatrix):
        arrays.update(
            stream=np.frombuffer(matrix.stream, dtype=np.uint8),
            values=matrix.values,
        )
    elif isinstance(matrix, BCSRMatrix):
        arrays.update(
            brow_ptr=matrix.brow_ptr,
            bcol_ind=matrix.bcol_ind,
            block_values=matrix.block_values,
            block_shape=np.array([matrix.r, matrix.c], dtype=np.int64),
        )
    elif isinstance(matrix, ELLMatrix):
        arrays.update(col_slab=matrix.col_slab, value_slab=matrix.value_slab)
    elif isinstance(matrix, JDSMatrix):
        arrays.update(
            perm=matrix.perm,
            jd_ptr=matrix.jd_ptr,
            col_ind=matrix.col_ind,
            values=matrix.values,
        )
    else:
        raise FormatError(f"cannot serialize {type(matrix).__name__}")
    np.savez_compressed(path, **arrays)


def load_matrix(path) -> SparseMatrix:
    """Load a matrix saved by :func:`save_matrix`."""
    with np.load(path) as data:
        if "__magic__" not in data or str(data["__magic__"]) != _MAGIC:
            raise FormatError(f"{path} is not a repro sparse-matrix file")
        name = str(data["__format__"])
        nrows, ncols = (int(v) for v in data["__shape__"])
        if name == "coo":
            return COOMatrix(nrows, ncols, data["rows"], data["cols"], data["values"])
        if name == "csr":
            return CSRMatrix(
                nrows, ncols, data["row_ptr"], data["col_ind"], data["values"],
                col_index_dtype=data["col_ind"].dtype,
                index_dtype=data["row_ptr"].dtype,
            )
        if name == "csc":
            return CSCMatrix(
                nrows, ncols, data["col_ptr"], data["row_ind"], data["values"]
            )
        if name == "csr-du":
            return CSRDUMatrix(nrows, ncols, data["ctl"].tobytes(), data["values"])
        if name == "csr-vi":
            return CSRVIMatrix(
                nrows,
                ncols,
                data["row_ptr"],
                data["col_ind"],
                data["vals_unique"],
                data["val_ind"],
            )
        if name == "csr-du-vi":
            return CSRDUVIMatrix(
                nrows,
                ncols,
                data["ctl"].tobytes(),
                data["vals_unique"],
                data["val_ind"],
            )
        if name == "dcsr":
            return DCSRMatrix(nrows, ncols, data["stream"].tobytes(), data["values"])
        if name == "bcsr":
            r, c = (int(v) for v in data["block_shape"])
            return BCSRMatrix(
                nrows,
                ncols,
                r,
                c,
                data["brow_ptr"],
                data["bcol_ind"],
                data["block_values"],
            )
        if name == "ell":
            return ELLMatrix(nrows, ncols, data["col_slab"], data["value_slab"])
        if name == "jds":
            return JDSMatrix(
                nrows,
                ncols,
                data["perm"],
                data["jd_ptr"],
                data["col_ind"],
                data["values"],
            )
        raise FormatError(f"unknown serialized format {name!r}")
