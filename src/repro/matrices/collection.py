"""The 100-matrix catalog mirroring the paper's experimental set.

The paper draws 100 matrices from the UF collection ([5] lists them by
id 1..100) and defines its experimental sets by id:

* ``M0``   -- the 77 matrices with SpMV working set >= 3 MB;
* ``ML``   -- the 52 of those with ws >= 4 x L2 + 1 MB = 17 MB
  (memory bound even with all 8 cores);
* ``MS``   -- the remaining 25 (working set cacheable at high thread
  counts);
* ``M0_vi`` / ``ML_vi`` / ``MS_vi`` -- the ttu > 5 subsets CSR-VI
  applies to.

The UF matrices are not available offline, so each id is bound to a
deterministic synthetic recipe (family + seeded parameters) whose
working set and total-to-unique ratio land it in exactly the paper's
sets.  Structural families rotate across ids so every set mixes
stencils, banded FEM-like matrices, unstructured and power-law
patterns -- the axes the formats are sensitive to (see
:mod:`repro.matrices.generators`).

``realize(id, scale=...)`` builds the matrix; ``scale`` shrinks the
working-set target (pair it with ``MachineSpec.scaled`` to keep every
matrix in its set -- see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.errors import CatalogError
from repro.formats.conversions import to_csr
from repro.formats.csr import CSRMatrix
from repro.matrices import generators as gen
from repro.matrices.values import continuous_values, quantized_values, set_matrix_values

# ---------------------------------------------------------------------------
# The paper's id sets (Section VI-B and VI-E, verbatim).
# ---------------------------------------------------------------------------


def _expand(spec: str) -> tuple[int, ...]:
    """Expand an id-list spec like ``"2-13, 15, 17"`` into a tuple."""
    out: list[int] = []
    for part in spec.replace(" ", "").split(","):
        if "-" in part:
            lo, hi = part.split("-")
            out.extend(range(int(lo), int(hi) + 1))
        else:
            out.append(int(part))
    return tuple(out)


ALL_IDS: tuple[int, ...] = tuple(range(1, 101))

#: ws >= 3 MB (77 matrices): "2-13, 15, 17, 21, 25, 26, 36, 40-42,
#: 44-53, 55-100" (Section VI-B).
M0_IDS: tuple[int, ...] = _expand("2-13,15,17,21,25,26,36,40-42,44-53,55-100")

#: ws >= 17 MB (52 matrices): "2, 5, 8-10, 15, 40, 45, 46, 50-53,
#: 55-57, 59, 61-64, 69-78, 80-100".
ML_IDS: tuple[int, ...] = _expand(
    "2,5,8-10,15,40,45,46,50-53,55-57,59,61-64,69-78,80-100"
)

#: The remaining 25 M0 matrices.
MS_IDS: tuple[int, ...] = tuple(i for i in M0_IDS if i not in set(ML_IDS))

#: ttu > 5, memory bound (22): "9, 40, 45, 46, 50-53, 57, 61, 63, 69,
#: 70, 73, 80, 82, 84-87, 93, 99" (Section VI-E).
ML_VI_IDS: tuple[int, ...] = _expand(
    "9,40,45,46,50-53,57,61,63,69,70,73,80,82,84-87,93,99"
)

#: ttu > 5, cacheable (8): "26, 41, 42, 44, 47, 67, 68, 79".
MS_VI_IDS: tuple[int, ...] = _expand("26,41,42,44,47,67,68,79")

M0_VI_IDS: tuple[int, ...] = tuple(sorted(ML_VI_IDS + MS_VI_IDS))

_MB = 1024 * 1024

_FAMILIES = (
    "stencil2d5",
    "banded",
    "stencil3d7",
    "random",
    "stencil2d9",
    "powerlaw",
    "stencil3d27",
    "banded",
    "block",
    "random",
    "banded",
    "diagonals",
)


@dataclass(frozen=True)
class CatalogEntry:
    """One catalog matrix: identity, class membership, and recipe."""

    matrix_id: int
    name: str
    family: str
    ws_target_bytes: int
    ttu_target: float | None  # None -> continuous (all-unique) values
    seed: int

    @property
    def in_m0(self) -> bool:
        return self.matrix_id in set(M0_IDS)

    @property
    def in_ml(self) -> bool:
        return self.matrix_id in set(ML_IDS)

    @property
    def in_ms(self) -> bool:
        return self.matrix_id in set(MS_IDS)

    @property
    def in_m0_vi(self) -> bool:
        return self.matrix_id in set(M0_VI_IDS)


def _ws_targets() -> dict[int, int]:
    """Assign a working-set target to every id, respecting its set.

    Targets are log-spaced inside each class band and shuffled
    deterministically so size is not monotone in id (the UF ids aren't
    either).  ML gets [17.8, 90] MB, MS [3.3, 15.5] MB, non-M0 (small)
    [0.4, 2.6] MB; id 1 is the dense matrix the paper rejects.
    """
    rng = np.random.default_rng(20080417)  # fixed: catalog identity
    targets: dict[int, int] = {}

    def assign(ids: tuple[int, ...], lo_mb: float, hi_mb: float) -> None:
        spread = np.geomspace(lo_mb, hi_mb, num=len(ids))
        rng.shuffle(spread)
        for mid, mb in zip(ids, spread):
            targets[mid] = int(mb * _MB)

    assign(ML_IDS, 17.8, 90.0)
    assign(MS_IDS, 3.3, 15.5)
    small = tuple(i for i in ALL_IDS if i not in set(M0_IDS) and i != 1)
    assign(small, 0.4, 2.6)
    targets[1] = 4 * _MB  # the dense matrix (excluded from M0 by the paper)
    return targets


def _ttu_targets() -> dict[int, float | None]:
    """ttu > 5 for the *_vi ids, modest or ~1 for the rest."""
    rng = np.random.default_rng(20080604)
    targets: dict[int, float | None] = {}
    vi = set(M0_VI_IDS)
    for mid in ALL_IDS:
        if mid in vi:
            targets[mid] = float(np.exp(rng.uniform(np.log(8.0), np.log(400.0))))
        else:
            # A third of the rest get mild redundancy (1 < ttu <= 4),
            # the others all-unique values -- mirroring that real
            # matrices below the threshold still repeat some values.
            targets[mid] = float(rng.uniform(1.5, 4.0)) if rng.random() < 0.33 else None
    return targets


_WS_TARGETS = _ws_targets()
_TTU_TARGETS = _ttu_targets()


def _family_of(matrix_id: int) -> str:
    if matrix_id == 1:
        return "dense"
    return _FAMILIES[matrix_id % len(_FAMILIES)]


def entry(matrix_id: int) -> CatalogEntry:
    """The catalog entry for *matrix_id* (1..100)."""
    if matrix_id not in set(ALL_IDS):
        raise CatalogError(f"catalog ids are 1..100, got {matrix_id}")
    family = _family_of(matrix_id)
    return CatalogEntry(
        matrix_id=matrix_id,
        name=f"syn{matrix_id:03d}-{family}",
        family=family,
        ws_target_bytes=_WS_TARGETS[matrix_id],
        ttu_target=_TTU_TARGETS[matrix_id],
        seed=700000 + matrix_id,
    )


def catalog(ids: tuple[int, ...] = ALL_IDS) -> list[CatalogEntry]:
    """Catalog entries for *ids* (default: all 100)."""
    return [entry(i) for i in ids]


# ---------------------------------------------------------------------------
# Realization
# ---------------------------------------------------------------------------

#: Approximate CSR working-set bytes per nonzero, used to size recipes:
#: 12 bytes of col_ind+values per nnz, plus row_ptr/x/y amortized via
#: the per-family nnz-per-row below.
def _rows_for(ws: int, nnz_per_row: float) -> int:
    # ws = nnz*12 + (n+1)*4 + 2n*8  with  nnz = n * nnz_per_row
    per_row = 12.0 * nnz_per_row + 20.0
    return max(16, int(ws / per_row))


def _build_structure(ent: CatalogEntry, ws: int):
    """Instantiate the structural pattern for one entry at target *ws*."""
    rng = np.random.default_rng(ent.seed)
    fam = ent.family
    if fam == "dense":
        n = max(8, int(np.sqrt(ws / 12.0)))
        return gen.random_uniform(n, n, max(1, n - 1), ent.seed)
    if fam == "stencil2d5":
        n = _rows_for(ws, 5)
        side = max(4, int(np.sqrt(n)))
        return gen.stencil_2d(side, side, points=5)
    if fam == "stencil2d9":
        n = _rows_for(ws, 9)
        side = max(4, int(np.sqrt(n)))
        return gen.stencil_2d(side, side, points=9)
    if fam == "stencil3d7":
        n = _rows_for(ws, 7)
        side = max(3, int(round(n ** (1 / 3))))
        return gen.stencil_3d(side, side, side, points=7)
    if fam == "stencil3d27":
        n = _rows_for(ws, 27)
        side = max(3, int(round(n ** (1 / 3))))
        return gen.stencil_3d(side, side, side, points=27)
    if fam == "banded":
        nnz_per_row = int(rng.integers(15, 45))
        n = _rows_for(ws, nnz_per_row)
        bandwidth = int(rng.integers(4 * nnz_per_row, 60 * nnz_per_row))
        bandwidth = min(bandwidth, max(2, n - 1))
        return gen.banded_random(n, bandwidth, nnz_per_row, ent.seed)
    if fam == "random":
        nnz_per_row = int(rng.integers(8, 24))
        # Duplicates get summed away; oversize ~6% to stay in class.
        n = _rows_for(int(ws * 1.06), nnz_per_row)
        return gen.random_uniform(n, n, nnz_per_row, ent.seed)
    if fam == "powerlaw":
        avg_degree = int(rng.integers(8, 16))
        n = _rows_for(int(ws * 1.12), avg_degree)
        return gen.powerlaw_graph(n, avg_degree, ent.seed)
    if fam == "block":
        block = int(rng.choice((2, 3, 4)))
        blocks_per_row = int(rng.integers(3, 8))
        nnz_per_row = block * blocks_per_row
        n = _rows_for(int(ws * 1.04), nnz_per_row)
        nblocks = max(4, n // block)
        return gen.block_structured(nblocks, block, blocks_per_row, ent.seed)
    if fam == "diagonals":
        ndiag = int(rng.integers(5, 13))
        n = _rows_for(ws, ndiag)
        max_off = max(2, min(n - 1, n // 3))
        offs = rng.choice(np.arange(1, max_off), size=max(1, ndiag // 2), replace=False)
        offsets = tuple(sorted({0, *map(int, offs), *map(lambda o: -int(o), offs)}))
        return gen.diagonal_bands(n, offsets)
    raise CatalogError(f"unknown family {fam!r} for matrix {ent.matrix_id}")


def realize(matrix_id: int, *, scale: float = 1.0) -> CSRMatrix:
    """Build the catalog matrix *matrix_id* at working-set scale *scale*.

    Deterministic: the same (id, scale) always yields the same matrix.
    Pass ``scale < 1`` together with ``machine.scaled(scale)`` to run
    class-faithful scaled experiments.
    """
    if scale <= 0:
        raise CatalogError(f"scale must be positive, got {scale}")
    ent = entry(matrix_id)
    target = max(4096, int(ent.ws_target_bytes * scale))
    # The class bands bound the realized size from both sides: ML must
    # stay >= 17 MB (scaled), MS inside [3, 17) MB, non-M0 below 3 MB.
    upper = None
    if ent.in_ms:
        upper = int(17 * _MB * scale * 0.99)
    elif not ent.in_m0 and matrix_id != 1:
        upper = int(3 * _MB * scale * 0.99)
    # Random families lose nonzeros to duplicate collisions, and grid
    # families round their dimensions (a 3-D cube's volume moves in
    # side^3 steps); rebuild with an adjusted request until the realized
    # working set lands in its class band (the set-membership tests
    # depend on it).  Deterministic: the adjustment sequence is a pure
    # function of (id, scale).
    from repro.formats.base import working_set_bytes

    ws = target
    csr = None
    best = None  # largest compliant build (class band beats exact size)
    for _ in range(6):
        structure = _build_structure(ent, ws)
        csr = to_csr(structure)
        realized = working_set_bytes(csr)
        if ent.family == "dense":
            break
        if upper is None or realized < upper:
            if best is None or realized > working_set_bytes(best):
                best = csr
        if realized < target:
            ws = int(ws * target / max(1, realized) * 1.05)
        elif upper is not None and realized >= upper:
            ws = max(4096, int(ws * upper / realized * 0.92))
        else:
            break
    # Coarse-grained families (3-D cubes step in side^3) may be unable
    # to satisfy both the size target and the class ceiling; the class
    # ceiling wins -- set membership is what the experiments rely on.
    if (
        ent.family != "dense"
        and upper is not None
        and working_set_bytes(csr) >= upper
        and best is not None
    ):
        csr = best
    if ent.ttu_target is None:
        values = continuous_values(csr.nnz, ent.seed + 1)
    else:
        unique = max(2, int(round(csr.nnz / ent.ttu_target)))
        unique = min(unique, csr.nnz)
        values = quantized_values(csr.nnz, unique, ent.seed + 1)
    return set_matrix_values(csr, values)
