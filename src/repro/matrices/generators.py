"""Synthetic sparse-matrix generators.

The paper's 100-matrix set comes from the Tim Davis (UF) collection --
unavailable offline, so the catalog (see
:mod:`repro.matrices.collection`) is built from these generators, one
per structural family that collection spans:

* :func:`stencil_2d` / :func:`stencil_3d` -- PDE discretizations
  (5/9-point and 7/27-point Laplacians): tiny constant deltas, strong
  diagonal structure; the CSR-DU best case;
* :func:`banded_random` -- FEM-like matrices: nonzeros scattered inside
  a band, mixed u8/u16 deltas;
* :func:`random_uniform` -- unstructured sparsity: large scattered
  deltas, poor x locality; CSR-DU's hard case;
* :func:`powerlaw_graph` -- web/social graph adjacency with a skewed
  degree distribution: extreme row-length variance, tests load
  balancing;
* :func:`block_structured` -- small dense blocks (multi-dof FEM);
  BCSR's natural prey;
* :func:`dense_band` -- a fully dense band (narrow finite-difference
  operators): one contiguous run per row, the sequential-unit case;
* :func:`diagonal_bands` -- a few off-diagonals (CDS-like structure);
* :func:`tridiagonal` -- the minimal banded case.

Every generator takes an explicit seed and is fully deterministic; all
return :class:`~repro.formats.coo.COOMatrix` with value 1.0 entries --
value models live in :mod:`repro.matrices.values` and are applied
separately so structure and value redundancy compose freely.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CatalogError
from repro.formats.coo import COOMatrix


def _coo(nrows: int, ncols: int, rows, cols) -> COOMatrix:
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    values = np.ones(rows.size, dtype=np.float64)
    return COOMatrix(
        nrows, ncols, rows.astype(np.int32), cols.astype(np.int32), values
    )


def stencil_2d(nx: int, ny: int, points: int = 5) -> COOMatrix:
    """2-D grid Laplacian stencil on an ``nx x ny`` grid.

    ``points`` is 5 (von Neumann neighbourhood) or 9 (Moore).  Matrix
    order is ``nx * ny``.
    """
    if points not in (5, 9):
        raise CatalogError(f"2-D stencil must have 5 or 9 points, got {points}")
    if nx < 1 or ny < 1:
        raise CatalogError("grid dimensions must be positive")
    gx, gy = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    gx, gy = gx.ravel(), gy.ravel()
    if points == 5:
        offs = [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]
    else:
        offs = [(di, dj) for di in (-1, 0, 1) for dj in (-1, 0, 1)]
    rows_list, cols_list = [], []
    for di, dj in offs:
        ni, nj = gx + di, gy + dj
        ok = (ni >= 0) & (ni < nx) & (nj >= 0) & (nj < ny)
        rows_list.append((gx[ok] * ny + gy[ok]))
        cols_list.append((ni[ok] * ny + nj[ok]))
    return _coo(nx * ny, nx * ny, np.concatenate(rows_list), np.concatenate(cols_list))


def stencil_3d(nx: int, ny: int, nz: int, points: int = 7) -> COOMatrix:
    """3-D grid Laplacian stencil (7- or 27-point)."""
    if points not in (7, 27):
        raise CatalogError(f"3-D stencil must have 7 or 27 points, got {points}")
    if min(nx, ny, nz) < 1:
        raise CatalogError("grid dimensions must be positive")
    gx, gy, gz = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    gx, gy, gz = gx.ravel(), gy.ravel(), gz.ravel()
    if points == 7:
        offs = [
            (0, 0, 0),
            (-1, 0, 0),
            (1, 0, 0),
            (0, -1, 0),
            (0, 1, 0),
            (0, 0, -1),
            (0, 0, 1),
        ]
    else:
        offs = [
            (di, dj, dk)
            for di in (-1, 0, 1)
            for dj in (-1, 0, 1)
            for dk in (-1, 0, 1)
        ]
    rows_list, cols_list = [], []
    for di, dj, dk in offs:
        ni, nj, nk = gx + di, gy + dj, gz + dk
        ok = (
            (ni >= 0)
            & (ni < nx)
            & (nj >= 0)
            & (nj < ny)
            & (nk >= 0)
            & (nk < nz)
        )
        rows_list.append((gx[ok] * ny + gy[ok]) * nz + gz[ok])
        cols_list.append((ni[ok] * ny + nj[ok]) * nz + nk[ok])
    n = nx * ny * nz
    return _coo(n, n, np.concatenate(rows_list), np.concatenate(cols_list))


def banded_random(
    n: int, bandwidth: int, nnz_per_row: int, seed: int
) -> COOMatrix:
    """FEM-like band matrix: *nnz_per_row* entries per row scattered
    uniformly inside ``[i - bandwidth, i + bandwidth]`` (plus the
    diagonal, always present)."""
    if n < 1 or bandwidth < 1 or nnz_per_row < 1:
        raise CatalogError("banded_random parameters must be positive")
    rng = np.random.default_rng(seed)
    k = max(1, nnz_per_row - 1)
    rows = np.repeat(np.arange(n, dtype=np.int64), k)
    offs = rng.integers(-bandwidth, bandwidth + 1, size=rows.size)
    cols = np.clip(rows + offs, 0, n - 1)
    diag = np.arange(n, dtype=np.int64)
    return _coo(
        n, n, np.concatenate([rows, diag]), np.concatenate([cols, diag])
    )


def random_uniform(
    nrows: int, ncols: int, nnz_per_row: int, seed: int
) -> COOMatrix:
    """Unstructured sparsity: nnz_per_row uniform random columns per row."""
    if nrows < 1 or ncols < 1 or nnz_per_row < 1:
        raise CatalogError("random_uniform parameters must be positive")
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(nrows, dtype=np.int64), nnz_per_row)
    cols = rng.integers(0, ncols, size=rows.size)
    return _coo(nrows, ncols, rows, cols)


def powerlaw_graph(n: int, avg_degree: int, seed: int, alpha: float = 1.5) -> COOMatrix:
    """Graph adjacency with power-law-ish degree skew.

    Target column popularity follows a Zipf(alpha) profile over a random
    permutation of vertices, giving a few extremely heavy columns/rows
    -- the load-balancing stress case (cf. the web matrices in [5]).
    """
    if n < 2 or avg_degree < 1:
        raise CatalogError("powerlaw_graph needs n >= 2, avg_degree >= 1")
    rng = np.random.default_rng(seed)
    m = n * avg_degree
    # Zipf-profile sampling via inverse-CDF on ranks.
    u = rng.random(m)
    ranks = ((n ** (1 - alpha) - 1) * u + 1) ** (1 / (1 - alpha))
    cols = np.minimum((ranks - 1).astype(np.int64), n - 1)
    perm = rng.permutation(n)
    cols = perm[cols]
    rows = rng.integers(0, n, size=m)
    return _coo(n, n, rows, cols)


def block_structured(
    nblocks: int, block: int, blocks_per_row: int, seed: int
) -> COOMatrix:
    """Dense ``block x block`` tiles on a random block-sparsity pattern
    (multi-dof FEM structure; BCSR's ideal input)."""
    if nblocks < 1 or block < 1 or blocks_per_row < 1:
        raise CatalogError("block_structured parameters must be positive")
    rng = np.random.default_rng(seed)
    brows = np.repeat(np.arange(nblocks, dtype=np.int64), blocks_per_row)
    bcols = rng.integers(0, nblocks, size=brows.size)
    # Expand every (brow, bcol) tile into block*block entries.
    di, dj = np.meshgrid(np.arange(block), np.arange(block), indexing="ij")
    di, dj = di.ravel(), dj.ravel()
    rows = (brows[:, None] * block + di[None, :]).ravel()
    cols = (bcols[:, None] * block + dj[None, :]).ravel()
    n = nblocks * block
    return _coo(n, n, rows, cols)


def dense_band(n: int, half_bandwidth: int) -> COOMatrix:
    """A fully dense band: every entry within ``|i - j| <= half_bandwidth``.

    Narrow-band FEM / finite-difference matrices look like this; each
    row is one contiguous column run -- the long constant-delta
    stretches that the sequential-unit encoder (the ``"seq"`` policy)
    exists for.
    """
    if n < 1 or half_bandwidth < 0:
        raise CatalogError("dense_band needs n >= 1 and half_bandwidth >= 0")
    idx = np.arange(n, dtype=np.int64)
    rows_list, cols_list = [], []
    for off in range(-half_bandwidth, half_bandwidth + 1):
        cols = idx + off
        ok = (cols >= 0) & (cols < n)
        rows_list.append(idx[ok])
        cols_list.append(cols[ok])
    return _coo(n, n, np.concatenate(rows_list), np.concatenate(cols_list))


def diagonal_bands(n: int, offsets: tuple[int, ...]) -> COOMatrix:
    """A matrix holding full diagonals at the given *offsets* (CDS-like)."""
    if n < 1:
        raise CatalogError("n must be positive")
    if not offsets:
        raise CatalogError("at least one diagonal offset required")
    rows_list, cols_list = [], []
    idx = np.arange(n, dtype=np.int64)
    for off in offsets:
        if abs(off) >= n:
            raise CatalogError(f"offset {off} out of range for n={n}")
        cols = idx + off
        ok = (cols >= 0) & (cols < n)
        rows_list.append(idx[ok])
        cols_list.append(cols[ok])
    return _coo(n, n, np.concatenate(rows_list), np.concatenate(cols_list))


def tridiagonal(n: int) -> COOMatrix:
    """The classic [-1, 0, 1] band."""
    return diagonal_bands(n, (-1, 0, 1))
