"""Matrix workloads: synthetic generators, the paper's catalog, I/O, stats."""

from repro.matrices.generators import (
    banded_random,
    block_structured,
    dense_band,
    diagonal_bands,
    powerlaw_graph,
    random_uniform,
    stencil_2d,
    stencil_3d,
    tridiagonal,
)
from repro.matrices.values import (
    continuous_values,
    quantized_values,
    set_matrix_values,
)
from repro.matrices.reorder import apply_symmetric_permutation, rcm_permutation, rcm_reorder
from repro.matrices.stats import MatrixStats, compute_stats
from repro.matrices.collection import (
    ALL_IDS,
    M0_IDS,
    M0_VI_IDS,
    ML_IDS,
    ML_VI_IDS,
    MS_IDS,
    MS_VI_IDS,
    CatalogEntry,
    catalog,
    entry,
    realize,
)
from repro.matrices.mmio import read_matrix_market, write_matrix_market

__all__ = [
    "stencil_2d",
    "stencil_3d",
    "banded_random",
    "random_uniform",
    "powerlaw_graph",
    "block_structured",
    "dense_band",
    "diagonal_bands",
    "tridiagonal",
    "continuous_values",
    "quantized_values",
    "set_matrix_values",
    "rcm_permutation",
    "rcm_reorder",
    "apply_symmetric_permutation",
    "MatrixStats",
    "compute_stats",
    "CatalogEntry",
    "catalog",
    "entry",
    "realize",
    "ALL_IDS",
    "M0_IDS",
    "ML_IDS",
    "MS_IDS",
    "M0_VI_IDS",
    "ML_VI_IDS",
    "MS_VI_IDS",
    "read_matrix_market",
    "write_matrix_market",
]
