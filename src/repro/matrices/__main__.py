"""Catalog inspection CLI: ``python -m repro.matrices [ids...]``.

Prints each requested catalog matrix's recipe and realized statistics
(at ``--scale``), or with no ids a summary table of the whole catalog's
set structure.  Useful when deciding which ids to use in an experiment.
"""

from __future__ import annotations

import argparse
import sys

from repro.formats.conversions import convert
from repro.matrices.collection import (
    ALL_IDS,
    M0_IDS,
    M0_VI_IDS,
    ML_IDS,
    MS_IDS,
    entry,
    realize,
)
from repro.matrices.stats import compute_stats


def _class_of(mid: int) -> str:
    klass = "ML" if mid in ML_IDS else "MS" if mid in MS_IDS else "small"
    if mid in M0_VI_IDS:
        klass += "_vi"
    return klass


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.matrices",
        description="Inspect the 100-matrix reproduction catalog.",
    )
    parser.add_argument(
        "ids", nargs="*", type=int, help="catalog ids to realize and describe"
    )
    parser.add_argument("--scale", type=float, default=1 / 32)
    args = parser.parse_args(argv)

    if not args.ids:
        print(f"catalog: {len(ALL_IDS)} matrices "
              f"(M0={len(M0_IDS)}, ML={len(ML_IDS)}, MS={len(MS_IDS)}, "
              f"vi={len(M0_VI_IDS)})")
        print(f"{'id':>4} {'name':<24} {'class':<9} {'ws target':>10} {'ttu target':>10}")
        for mid in ALL_IDS:
            e = entry(mid)
            ttu = f"{e.ttu_target:.1f}" if e.ttu_target else "~1"
            print(
                f"{mid:>4} {e.name:<24} {_class_of(mid):<9} "
                f"{e.ws_target_bytes / 2**20:>8.1f}MB {ttu:>10}"
            )
        return 0

    for mid in args.ids:
        e = entry(mid)
        m = realize(mid, scale=args.scale)
        s = compute_stats(m)
        du = convert(m, "csr-du")
        vi = convert(m, "csr-vi")
        print(f"=== id {mid}: {e.name} ({_class_of(mid)}) at scale {args.scale:g} ===")
        print(f"  shape {s.nrows}x{s.ncols}, nnz {s.nnz}, ws {s.ws_mb:.2f} MB")
        print(f"  ttu {s.ttu:.1f} ({s.unique_values} unique values)")
        print(f"  row lengths: mean {s.row_len_mean:.1f}, max {s.row_len_max}, "
              f"std {s.row_len_std:.1f}, empty rows {s.empty_rows}")
        print(f"  deltas: {100 * s.delta_u8_frac:.0f}% u8, "
              f"{100 * s.delta_u16_frac:.0f}% u16; bandwidth {s.bandwidth}")
        csr_st = convert(m, "csr").storage()
        print(f"  csr-du index: {du.storage().index_bytes} B "
              f"({du.storage().index_bytes / csr_st.index_bytes:.2f}x of CSR)")
        print(f"  csr-vi value: {vi.storage().value_bytes} B "
              f"({vi.storage().value_bytes / csr_st.value_bytes:.2f}x of CSR)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
