"""Matrix reordering: Reverse Cuthill-McKee (RCM).

The paper's related work (Section III-A, [12]-[15]) includes matrix
reordering among the techniques that improve SpMV's irregular x
accesses.  Reordering interacts *constructively* with CSR-DU: clustering
each row's nonzeros near the diagonal shrinks the column deltas, pushes
them into the u8 width class, and lengthens units -- so bandwidth
reduction compounds with compression (ablation ABL-8).

Implemented from scratch: classic RCM -- BFS from a pseudo-peripheral
vertex, neighbors visited in increasing-degree order, final order
reversed.  Unsymmetric patterns are symmetrized (A + A^T) for the
traversal, as is standard.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import FormatError
from repro.formats.conversions import to_csr
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.base import SparseMatrix


def _symmetric_adjacency(csr: CSRMatrix) -> tuple[np.ndarray, np.ndarray]:
    """CSR structure of A + A^T without the diagonal (adjacency lists)."""
    rows = csr.row_of_entry().astype(np.int64)
    cols = csr.col_ind.astype(np.int64)
    off = rows != cols
    u = np.concatenate([rows[off], cols[off]])
    v = np.concatenate([cols[off], rows[off]])
    order = np.lexsort((v, u))
    u, v = u[order], v[order]
    if u.size:
        keep = np.ones(u.size, dtype=bool)
        keep[1:] = (u[1:] != u[:-1]) | (v[1:] != v[:-1])
        u, v = u[keep], v[keep]
    counts = np.bincount(u, minlength=csr.nrows)
    ptr = np.zeros(csr.nrows + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    return ptr, v


def _pseudo_peripheral(ptr: np.ndarray, adj: np.ndarray, start: int) -> int:
    """George-Liu style: repeat BFS from the farthest minimum-degree node."""
    n = ptr.size - 1
    node = start
    last_ecc = -1
    for _ in range(8):  # converges in a few rounds in practice
        level = np.full(n, -1, dtype=np.int64)
        level[node] = 0
        queue = deque([node])
        far = node
        while queue:
            cur = queue.popleft()
            for nb in adj[ptr[cur] : ptr[cur + 1]]:
                if level[nb] < 0:
                    level[nb] = level[cur] + 1
                    queue.append(int(nb))
                    far = int(nb)
        ecc = int(level.max())
        if ecc <= last_ecc:
            return node
        last_ecc = ecc
        # Pick the minimum-degree vertex in the last level.
        last = np.flatnonzero(level == ecc)
        degrees = ptr[last + 1] - ptr[last]
        node = int(last[np.argmin(degrees)])
    return node


def rcm_permutation(matrix: SparseMatrix) -> np.ndarray:
    """The RCM ordering of *matrix*'s symmetrized pattern.

    Returns ``perm`` with ``perm[new_index] = old_index``; disconnected
    components are handled by restarting from the lowest-degree
    unvisited vertex.
    """
    csr = to_csr(matrix)
    if csr.nrows != csr.ncols:
        raise FormatError("RCM requires a square matrix")
    n = csr.nrows
    if n == 0:
        return np.empty(0, dtype=np.int64)
    ptr, adj = _symmetric_adjacency(csr)
    degrees = ptr[1:] - ptr[:-1]
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    by_degree = np.argsort(degrees, kind="stable")
    cursor = 0
    while len(order) < n:
        while cursor < n and visited[by_degree[cursor]]:
            cursor += 1
        start = _pseudo_peripheral(ptr, adj, int(by_degree[cursor]))
        visited[start] = True
        queue = deque([start])
        order.append(start)
        while queue:
            cur = queue.popleft()
            nbs = adj[ptr[cur] : ptr[cur + 1]]
            nbs = nbs[~visited[nbs]]
            # Cuthill-McKee: visit neighbours by increasing degree.
            for nb in nbs[np.argsort(degrees[nbs], kind="stable")]:
                if not visited[nb]:
                    visited[nb] = True
                    order.append(int(nb))
                    queue.append(int(nb))
    return np.asarray(order[::-1], dtype=np.int64)  # the Reverse in RCM


def apply_symmetric_permutation(
    matrix: SparseMatrix, perm: np.ndarray
) -> CSRMatrix:
    """``B = P A P^T``: relabel rows and columns by *perm*.

    ``perm[new] = old``; entry ``(i, j)`` of A lands at
    ``(inv[i], inv[j])`` of B.  The product ``B (P x)`` equals
    ``P (A x)``, so solver results are recoverable exactly.
    """
    csr = to_csr(matrix)
    if csr.nrows != csr.ncols:
        raise FormatError("symmetric permutation requires a square matrix")
    perm = np.asarray(perm, dtype=np.int64)
    if sorted(perm.tolist()) != list(range(csr.nrows)):
        raise FormatError("perm must be a permutation of the rows")
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size)
    rows = inv[csr.row_of_entry().astype(np.int64)]
    cols = inv[csr.col_ind.astype(np.int64)]
    return CSRMatrix.from_coo(
        COOMatrix(
            csr.nrows,
            csr.ncols,
            rows.astype(np.int32),
            cols.astype(np.int32),
            csr.values,
        )
    )


def rcm_reorder(matrix: SparseMatrix) -> tuple[CSRMatrix, np.ndarray]:
    """Convenience: RCM-permute *matrix*; returns ``(reordered, perm)``."""
    perm = rcm_permutation(matrix)
    return apply_symmetric_permutation(matrix, perm), perm
