"""Matrix Market (.mtx) I/O.

The paper's matrices come from the UF collection, which distributes
Matrix Market files.  This reader/writer supports the subset those
files use: ``matrix coordinate`` with ``real`` / ``integer`` /
``pattern`` fields and ``general`` / ``symmetric`` /
``skew-symmetric`` symmetries -- so real UF matrices can be dropped
into the harness in place of the synthetic catalog when available.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix
from repro.formats.coo import COOMatrix
from repro.formats.conversions import to_csr

_SUPPORTED_FIELDS = ("real", "integer", "pattern")
_SUPPORTED_SYMMETRIES = ("general", "symmetric", "skew-symmetric")


def read_matrix_market(path_or_file) -> COOMatrix:
    """Read a Matrix Market coordinate file into COO.

    Symmetric storage is expanded (off-diagonal entries mirrored);
    pattern files get unit values.
    """
    if hasattr(path_or_file, "read"):
        return _read(path_or_file)
    with open(path_or_file, "r", encoding="ascii") as fh:
        return _read(fh)


def _read(fh) -> COOMatrix:
    header = fh.readline().strip().split()
    if (
        len(header) != 5
        or header[0] != "%%MatrixMarket"
        or header[1].lower() != "matrix"
    ):
        raise FormatError(f"not a MatrixMarket matrix header: {' '.join(header)}")
    layout, field, symmetry = (
        header[2].lower(),
        header[3].lower(),
        header[4].lower(),
    )
    if layout != "coordinate":
        raise FormatError(f"only coordinate layout supported, got {layout!r}")
    if field not in _SUPPORTED_FIELDS:
        raise FormatError(f"unsupported field {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRIES:
        raise FormatError(f"unsupported symmetry {symmetry!r}")

    line = fh.readline()
    while line.startswith("%"):
        line = fh.readline()
    try:
        nrows, ncols, nnz = (int(tok) for tok in line.split())
    except ValueError:
        raise FormatError(f"bad size line: {line!r}") from None

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    for k in range(nnz):
        toks = fh.readline().split()
        if len(toks) < (2 if field == "pattern" else 3):
            raise FormatError(f"truncated entry at line {k + 1}")
        rows[k] = int(toks[0]) - 1
        cols[k] = int(toks[1]) - 1
        vals[k] = 1.0 if field == "pattern" else float(toks[2])

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        rows = np.concatenate([rows, cols[off]])
        cols = np.concatenate([cols, rows[: off.size][off]])
        vals = np.concatenate([vals, sign * vals[off]])
    return COOMatrix(
        nrows, ncols, rows.astype(np.int32), cols.astype(np.int32), vals
    )


def write_matrix_market(matrix: SparseMatrix, path_or_file) -> None:
    """Write any format as a general real coordinate Matrix Market file."""
    csr = to_csr(matrix)
    coo = csr.to_coo()
    buf = io.StringIO()
    buf.write("%%MatrixMarket matrix coordinate real general\n")
    buf.write("% written by repro (ICPP'08 SpMV compression reproduction)\n")
    buf.write(f"{coo.nrows} {coo.ncols} {coo.nnz}\n")
    for i, j, v in zip(coo.rows.tolist(), coo.cols.tolist(), coo.values.tolist()):
        buf.write(f"{i + 1} {j + 1} {v!r}\n")
    data = buf.getvalue()
    if hasattr(path_or_file, "write"):
        path_or_file.write(data)
    else:
        Path(path_or_file).write_text(data, encoding="ascii")
