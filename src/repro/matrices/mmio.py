"""Matrix Market (.mtx) I/O.

The paper's matrices come from the UF collection, which distributes
Matrix Market files.  This reader/writer supports the subset those
files use: ``matrix coordinate`` with ``real`` / ``integer`` /
``pattern`` fields and ``general`` / ``symmetric`` /
``skew-symmetric`` symmetries -- so real UF matrices can be dropped
into the harness in place of the synthetic catalog when available.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix
from repro.formats.coo import COOMatrix
from repro.formats.conversions import to_csr

_SUPPORTED_FIELDS = ("real", "integer", "pattern")
_SUPPORTED_SYMMETRIES = ("general", "symmetric", "skew-symmetric")


def read_matrix_market(path_or_file) -> COOMatrix:
    """Read a Matrix Market coordinate file into COO.

    Symmetric storage is expanded (off-diagonal entries mirrored);
    pattern files get unit values.
    """
    if hasattr(path_or_file, "read"):
        return _read(path_or_file)
    with open(path_or_file, "r", encoding="ascii") as fh:
        return _read(fh)


def _read(fh) -> COOMatrix:
    # Every malformed-input path below raises FormatError with the
    # 1-based line number of the offending line, so a bad download is
    # diagnosable without opening the file.
    raw = fh.readline()
    if not raw.strip():
        raise FormatError("line 1: missing MatrixMarket header")
    header = raw.strip().split()
    if (
        len(header) != 5
        or header[0] != "%%MatrixMarket"
        or header[1].lower() != "matrix"
    ):
        raise FormatError(
            f"line 1: not a MatrixMarket matrix header: {' '.join(header)}"
        )
    layout, field, symmetry = (
        header[2].lower(),
        header[3].lower(),
        header[4].lower(),
    )
    if layout != "coordinate":
        raise FormatError(f"only coordinate layout supported, got {layout!r}")
    if field not in _SUPPORTED_FIELDS:
        raise FormatError(f"unsupported field {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRIES:
        raise FormatError(f"unsupported symmetry {symmetry!r}")

    lineno = 1
    line = fh.readline()
    lineno += 1
    while line.startswith("%"):
        line = fh.readline()
        lineno += 1
    if not line.strip():
        raise FormatError(f"line {lineno}: missing size line")
    try:
        nrows, ncols, nnz = (int(tok) for tok in line.split())
    except ValueError:
        raise FormatError(
            f"line {lineno}: bad size line: {line.strip()!r} "
            "(expected 'nrows ncols nnz')"
        ) from None
    if nrows < 0 or ncols < 0 or nnz < 0:
        raise FormatError(
            f"line {lineno}: negative dimensions in size line: "
            f"{nrows} {ncols} {nnz}"
        )

    need = 2 if field == "pattern" else 3
    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    for k in range(nnz):
        entry = fh.readline()
        lineno += 1
        toks = entry.split()
        if len(toks) < need:
            raise FormatError(
                f"line {lineno}: truncated entry {k + 1} of {nnz}: "
                f"expected {need} fields, got {len(toks)}"
            )
        try:
            i = int(toks[0])
            j = int(toks[1])
            v = 1.0 if field == "pattern" else float(toks[2])
        except ValueError:
            raise FormatError(
                f"line {lineno}: non-numeric entry: {entry.strip()!r}"
            ) from None
        if not (1 <= i <= nrows and 1 <= j <= ncols):
            raise FormatError(
                f"line {lineno}: entry ({i}, {j}) outside the declared "
                f"{nrows} x {ncols} shape (indices are 1-based)"
            )
        rows[k] = i - 1
        cols[k] = j - 1
        vals[k] = v

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        rows = np.concatenate([rows, cols[off]])
        cols = np.concatenate([cols, rows[: off.size][off]])
        vals = np.concatenate([vals, sign * vals[off]])
    return COOMatrix(
        nrows, ncols, rows.astype(np.int32), cols.astype(np.int32), vals
    )


def write_matrix_market(matrix: SparseMatrix, path_or_file) -> None:
    """Write any format as a general real coordinate Matrix Market file."""
    csr = to_csr(matrix)
    coo = csr.to_coo()
    buf = io.StringIO()
    buf.write("%%MatrixMarket matrix coordinate real general\n")
    buf.write("% written by repro (ICPP'08 SpMV compression reproduction)\n")
    buf.write(f"{coo.nrows} {coo.ncols} {coo.nnz}\n")
    for i, j, v in zip(coo.rows.tolist(), coo.cols.tolist(), coo.values.tolist()):
        buf.write(f"{i + 1} {j + 1} {v!r}\n")
    data = buf.getvalue()
    if hasattr(path_or_file, "write"):
        path_or_file.write(data)
    else:
        Path(path_or_file).write_text(data, encoding="ascii")
