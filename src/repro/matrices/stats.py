"""Matrix statistics: working set, ttu, row lengths, delta profile.

These are the quantities the paper classifies matrices by (Section
VI-B): the SpMV working set against the L2 capacity (MS / ML split) and
the total-to-unique value ratio (the CSR-VI ttu > 5 criterion), plus
structural statistics that explain CSR-DU behaviour (what fraction of
column deltas fit one byte).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.base import SparseMatrix, working_set_bytes
from repro.formats.conversions import to_csr
from repro.util.bitops import width_class_array


@dataclass(frozen=True)
class MatrixStats:
    """Summary statistics of one matrix (see :func:`compute_stats`)."""

    nrows: int
    ncols: int
    nnz: int
    ws_bytes: int
    ttu: float
    unique_values: int
    row_len_mean: float
    row_len_max: int
    row_len_std: float
    empty_rows: int
    delta_u8_frac: float
    delta_u16_frac: float
    bandwidth: int

    @property
    def ws_mb(self) -> float:
        return self.ws_bytes / (1024 * 1024)

    def in_m0(self, l2_bytes: int = 4 * 1024 * 1024) -> bool:
        """The paper's M0 criterion: ws >= 3/4 of the L2 capacity."""
        return self.ws_bytes >= 0.75 * l2_bytes

    def in_ml(self, l2_bytes: int = 4 * 1024 * 1024) -> bool:
        """The paper's ML criterion: ws >= 4 * L2 + 1 MB."""
        return self.ws_bytes >= 4 * l2_bytes + 1024 * 1024

    def vi_applicable(self, threshold: float = 5.0) -> bool:
        """The paper's CSR-VI criterion: ttu > 5."""
        return self.ttu > threshold


def compute_stats(matrix: SparseMatrix) -> MatrixStats:
    """Compute :class:`MatrixStats` for any format (via its CSR view)."""
    csr = to_csr(matrix)
    lens = csr.row_lengths()
    cols = csr.col_ind.astype(np.int64)
    nnz = csr.nnz
    # Column deltas within rows (first-of-row delta measured from col 0,
    # matching the CSR-DU ujmp semantics).
    if nnz:
        deltas = np.empty(nnz, dtype=np.int64)
        deltas[0] = cols[0]
        deltas[1:] = cols[1:] - cols[:-1]
        starts = csr.row_ptr[:-1].astype(np.int64)
        starts = starts[(lens > 0)]
        deltas[starts] = cols[starts]
        classes = width_class_array(np.abs(deltas))
        u8 = float(np.count_nonzero(classes == 0)) / nnz
        u16 = float(np.count_nonzero(classes == 1)) / nnz
        rows_of = csr.row_of_entry()
        bandwidth = int(np.abs(cols - rows_of).max()) if csr.nrows == csr.ncols else 0
        unique = int(np.unique(csr.values).size)
    else:
        u8 = u16 = 0.0
        bandwidth = 0
        unique = 0
    return MatrixStats(
        nrows=csr.nrows,
        ncols=csr.ncols,
        nnz=nnz,
        ws_bytes=working_set_bytes(csr),
        ttu=nnz / unique if unique else 0.0,
        unique_values=unique,
        row_len_mean=float(lens.mean()) if lens.size else 0.0,
        row_len_max=int(lens.max()) if lens.size else 0,
        row_len_std=float(lens.std()) if lens.size else 0.0,
        empty_rows=int(np.count_nonzero(lens == 0)),
        delta_u8_frac=u8,
        delta_u16_frac=u16,
        bandwidth=bandwidth,
    )
