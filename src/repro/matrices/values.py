"""Value models: control a matrix's total-to-unique ratio.

The CSR-VI study (Section V) hinges on value redundancy, which the
structure generators know nothing about.  These helpers re-value an
existing matrix:

* :func:`continuous_values` -- i.i.d. uniform doubles: essentially all
  unique (ttu ~ 1), CSR-VI's worst case;
* :func:`quantized_values` -- values drawn from a pool of exactly
  ``unique_count`` distinct doubles, i.e. ttu = nnz / unique_count by
  construction (physics matrices with few material coefficients, or
  pattern matrices with 0/1 entries, behave like this -- the paper
  finds ~39% of its real set has ttu > 5).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CatalogError
from repro.formats.base import SparseMatrix
from repro.formats.coo import COOMatrix
from repro.formats.conversions import to_csr
from repro.formats.csr import CSRMatrix


def continuous_values(nnz: int, seed: int) -> np.ndarray:
    """All-distinct values in (0.5, 1.5) (away from 0 for solver use)."""
    if nnz < 0:
        raise CatalogError("nnz must be non-negative")
    rng = np.random.default_rng(seed)
    return rng.random(nnz) + 0.5


def quantized_values(nnz: int, unique_count: int, seed: int) -> np.ndarray:
    """Values drawn uniformly from *unique_count* distinct doubles.

    Every pool value is guaranteed to appear at least once when
    ``nnz >= unique_count``, so the realized ttu equals
    ``nnz / unique_count`` exactly.
    """
    if unique_count < 1:
        raise CatalogError("unique_count must be >= 1")
    if nnz < unique_count:
        raise CatalogError(
            f"nnz={nnz} cannot realize {unique_count} distinct values"
        )
    rng = np.random.default_rng(seed)
    pool = np.sort(rng.random(unique_count) + 0.5)
    # Guarantee full pool coverage, then fill the rest uniformly.
    idx = np.concatenate(
        [
            np.arange(unique_count),
            rng.integers(0, unique_count, size=nnz - unique_count),
        ]
    )
    rng.shuffle(idx)
    return pool[idx]


def set_matrix_values(matrix: SparseMatrix, values: np.ndarray) -> CSRMatrix:
    """Return a CSR copy of *matrix* with its nonzero values replaced.

    *values* must match the nonzero count; the sparsity pattern is
    untouched.
    """
    csr = to_csr(matrix)
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (csr.nnz,):
        raise CatalogError(
            f"got {values.shape[0] if values.ndim else 0} values "
            f"for {csr.nnz} nonzeros"
        )
    return CSRMatrix(csr.nrows, csr.ncols, csr.row_ptr, csr.col_ind, values)


def pattern_values(matrix: COOMatrix | SparseMatrix) -> CSRMatrix:
    """All-ones values (pattern matrices; ttu = nnz)."""
    csr = to_csr(matrix)
    return set_matrix_values(csr, np.ones(csr.nnz))
