"""Vectorized one-pass CSR-DU encode (the *batched* encoder).

The reference encoder (:func:`repro.compress.delta.unitize` feeding
:class:`repro.compress.ctl.CtlWriter`) pays Python-interpreter work per
*unit*: one ``Unit`` dataclass allocation, one ``append`` call, and
byte-at-a-time varint emission.  After PR 2 made decode O(#classes)
NumPy passes, that per-unit encode loop became the wall-clock bottleneck
of every conversion-heavy workload (bench sweeps, parallel chunk
construction).  This module removes it: the whole matrix is encoded
with a constant number of NumPy passes over O(nnz) data, and the output
is **byte-for-byte identical** to the reference stream -- the
``CtlWriter`` path stays in the tree as the executable specification
the tests compare against.

The pipeline (DESIGN.md section 4.3 has the layout math):

1. **Deltas and classes** -- :func:`repro.compress.delta.matrix_deltas`
   (shared with the reference encoder): per-element column deltas with
   row restarts, plus each delta's width class.
2. **Segments** -- element ranges split independently: one per
   non-empty row (``greedy``/``aligned``), further split at
   constant-delta runs of length >= ``MIN_SEQ_RUN + 1`` (``seq``).
3. **Emitters** -- maximal equal-class runs inside plain segments (one
   emitter per sequential segment).  The greedy policy's "steal a
   lone out-of-class delta as the next unit's ujmp" rule becomes a
   parity computation over blocks of consecutive singleton runs: the
   1st, 3rd, ... singleton of each block is *pending* (absorbed by the
   next emitter) unless it closes its segment.
4. **Units** -- per emitter, pure arithmetic: an optional absorbed
   first unit of ``1 + min(len, max_unit - 1)`` elements, then a chop
   into units of ``max_unit`` elements with an arithmetic remainder.
   ``np.repeat`` expands emitters into the unit table; a cumulative
   sum of unit sizes recovers each unit's first element, which *is*
   its ujmp position (units tile the element space in order).
5. **Serialization** -- per-unit byte sizes from vectorized varint
   sizing, an exclusive prefix sum for the ctl offsets, then scatters:
   flags/usize bytes, varint fields (:func:`repro.util.bitops.
   scatter_varints`, one pass per byte of the longest varint), and the
   fixed-width delta bodies grouped by width class (one gather +
   ``astype`` + byte scatter per class).

Because step 5 computes every unit's header and body offset exactly,
the encoder emits the decode side's
:class:`~repro.compress.unit_table.UnitTable` for free -- kernel plans
built from a batched encode skip the per-unit ``scan_units`` parse
entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compress.ctl import FLAG_NR, FLAG_RJMP, FLAG_SEQ
from repro.compress.delta import (
    MAX_UNIT_SIZE,
    MIN_SEQ_RUN,
    _POLICIES,
    matrix_deltas,
)
from repro.compress.unit_table import UnitTable, _ranges
from repro.errors import EncodingError, FormatError
from repro.telemetry import core as telemetry
from repro.telemetry.metrics import record_ctl_stream
from repro.util.bitops import (
    WIDTH_BYTES,
    WIDTH_DTYPES,
    scatter_varints,
    varint_size_array,
)

#: WIDTH_BYTES as an array, for per-unit body-size arithmetic.
_WIDTH_BYTES_ARR = np.asarray(WIDTH_BYTES, dtype=np.int64)


@dataclass(frozen=True)
class BatchedEncode:
    """One batched encode: the ctl stream plus its decode-side table.

    Attributes
    ----------
    ctl:
        The serialized stream, byte-identical to the reference
        :class:`~repro.compress.ctl.CtlWriter` output.
    table:
        The exact :class:`~repro.compress.unit_table.UnitTable` that
        ``scan_units(ctl)`` would reconstruct -- handed to kernel plans
        so they skip the per-unit header parse.
    class_counts:
        Units per delta width class (the paper's Table I census).
    new_rows, seq_units:
        NR-flagged and sequential-unit tallies of the stream.
    """

    ctl: bytes
    table: UnitTable
    class_counts: tuple[int, int, int, int]
    new_rows: int
    seq_units: int

    @property
    def nunits(self) -> int:
        return self.table.nunits


def _empty_encode() -> BatchedEncode:
    empty64 = np.empty(0, dtype=np.int64)
    table = UnitTable(
        flags=np.empty(0, dtype=np.uint8),
        sizes=empty64,
        classes=np.empty(0, dtype=np.int8),
        rows=empty64,
        new_row=np.empty(0, dtype=bool),
        seq=np.empty(0, dtype=bool),
        ujmps=empty64,
        strides=empty64,
        body_offsets=empty64,
        ctl_offsets=np.zeros(1, dtype=np.int64),
    )
    return BatchedEncode(
        ctl=b"", table=table, class_counts=(0, 0, 0, 0), new_rows=0, seq_units=0
    )


def _segment_masks(
    deltas: np.ndarray, starts: np.ndarray, policy: str
) -> tuple[np.ndarray, np.ndarray]:
    """Per-element ``(segment_start, in_seq_segment)`` masks.

    Plain segments are the spans the reference's ``_split_plain`` sees
    (whole rows, or the gaps between sequential runs); seq segments are
    the constant-delta runs of length >= ``MIN_SEQ_RUN + 1`` that
    ``_split_seq`` carves out.
    """
    n = deltas.size
    row_start = np.zeros(n, dtype=bool)
    row_start[starts] = True
    if policy != "seq":
        return row_start, np.zeros(n, dtype=bool)
    new_const_run = row_start.copy()
    np.logical_or(new_const_run[1:], deltas[1:] != deltas[:-1], out=new_const_run[1:])
    run_id = np.cumsum(new_const_run) - 1
    run_starts = np.flatnonzero(new_const_run)
    run_lens = np.diff(np.append(run_starts, n))
    in_seq = (run_lens >= MIN_SEQ_RUN + 1)[run_id]
    prev_seq = np.zeros(n, dtype=bool)
    prev_seq[1:] = in_seq[:-1]
    # A segment opens at every row start, at every transition in or out
    # of a sequential stretch, and at each new sequential run (two
    # adjacent constant runs can both qualify, with different strides).
    seg_start = row_start | (in_seq != prev_seq) | (in_seq & new_const_run)
    return seg_start, in_seq


def _pending_mask(
    e_lens: np.ndarray,
    e_seg: np.ndarray,
    e_seq: np.ndarray,
    e_last_in_seg: np.ndarray,
    policy: str,
) -> np.ndarray:
    """Greedy absorption: which emitters are held back as a ujmp.

    The reference's running ``pending`` state alternates strictly
    inside any block of consecutive singleton class runs (a pending
    singleton is always consumed by the very next run), so the 1st,
    3rd, ... member of each block is pending -- except a singleton that
    closes its segment, which the reference never holds back.
    """
    nem = e_lens.size
    if policy == "aligned" or nem == 0:
        return np.zeros(nem, dtype=bool)
    sing = ~e_seq & (e_lens == 1)
    prev_sing = np.zeros(nem, dtype=bool)
    prev_sing[1:] = sing[:-1] & (e_seg[1:] == e_seg[:-1])
    block_start = sing & ~prev_sing
    idx = np.arange(nem, dtype=np.int64)
    block_head = np.maximum.accumulate(np.where(block_start, idx, -1))
    return sing & ((idx - block_head) % 2 == 0) & ~e_last_in_seg


def unit_layout(
    row_ptr: np.ndarray,
    col_ind: np.ndarray,
    *,
    policy: str = "greedy",
    max_unit: int = MAX_UNIT_SIZE,
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Whole-matrix unit table as parallel arrays (no per-unit Python).

    Returns ``(deltas, units)`` where *units* maps field names --
    ``sizes``, ``classes``, ``ujmps``, ``seq``, ``strides``,
    ``body_starts`` (element index of each unit's fixed-width body),
    ``new_row``, ``row_jumps``, ``rows`` -- to one array per field, in
    stream order.  This is the structural half of the batched encoder;
    :func:`encode_ctl_batched` serializes it.
    """
    if policy not in _POLICIES:
        raise FormatError(f"unknown unit policy {policy!r}; choose from {_POLICIES}")
    if not 2 <= max_unit <= MAX_UNIT_SIZE:
        raise FormatError(f"max_unit must be in [2, {MAX_UNIT_SIZE}]")
    row_ptr = np.asarray(row_ptr, dtype=np.int64)
    col_ind = np.asarray(col_ind, dtype=np.int64)
    deltas, classes, starts = matrix_deltas(row_ptr, col_ind)
    n = deltas.size
    if n == 0:
        return deltas, {
            "sizes": np.empty(0, dtype=np.int64),
            "classes": np.empty(0, dtype=np.int8),
            "ujmps": np.empty(0, dtype=np.int64),
            "seq": np.empty(0, dtype=bool),
            "strides": np.empty(0, dtype=np.int64),
            "body_starts": np.empty(0, dtype=np.int64),
            "new_row": np.empty(0, dtype=bool),
            "row_jumps": np.empty(0, dtype=np.int64),
            "rows": np.empty(0, dtype=np.int64),
        }

    # -- segments and emitters (class runs / sequential runs) ---------
    seg_start, in_seq = _segment_masks(deltas, starts, policy)
    seg_id = np.cumsum(seg_start) - 1
    class_change = np.zeros(n, dtype=bool)
    class_change[1:] = classes[1:] != classes[:-1]
    emit_start = seg_start | (class_change & ~in_seq)
    e_starts = np.flatnonzero(emit_start)
    nem = e_starts.size
    e_ends = np.append(e_starts[1:], n)
    e_lens = e_ends - e_starts
    e_seg = seg_id[e_starts]
    e_seq = in_seq[e_starts]
    e_cls = classes[e_starts].astype(np.int64)
    e_last_in_seg = np.empty(nem, dtype=bool)
    e_last_in_seg[:-1] = e_seg[1:] != e_seg[:-1]
    e_last_in_seg[-1:] = True

    # -- greedy absorption --------------------------------------------
    pending = _pending_mask(e_lens, e_seg, e_seq, e_last_in_seg, policy)
    absorbed = np.zeros(nem, dtype=bool)
    absorbed[1:] = pending[:-1]

    # -- per-emitter unit counts (pure arithmetic) --------------------
    b0 = np.where(absorbed, np.minimum(e_lens, max_unit - 1), 0)
    chop = e_lens - b0  # elements left for the fixed chop
    k_chop = -(-chop // max_unit)  # ceil; 0 when the absorbed unit took all
    n_units = np.where(pending, 0, absorbed.astype(np.int64) + k_chop)
    rem = chop - (k_chop - 1) * max_unit  # size of each emitter's last chop unit

    # -- expand to units ----------------------------------------------
    total = int(n_units.sum())
    owner = np.repeat(np.arange(nem, dtype=np.int64), n_units)
    first_of_owner = np.repeat(np.cumsum(n_units) - n_units, n_units)
    j = np.arange(total, dtype=np.int64) - first_of_owner
    is_absorbed_unit = absorbed[owner] & (j == 0)
    is_last_chop = (j - absorbed[owner]) == (k_chop[owner] - 1)
    sizes = np.where(
        is_absorbed_unit,
        1 + b0[owner],
        np.where(is_last_chop, rem[owner], max_unit),
    )
    if int(sizes.sum()) != n:  # pragma: no cover - internal invariant
        raise EncodingError("batched unit layout does not tile the nonzeros")

    # Units tile the element space in order, so a cumulative size sum
    # is every unit's first consumed element -- its ujmp position (the
    # pending delta sits immediately before its absorbing run).
    elem_off = np.zeros(total, dtype=np.int64)
    np.cumsum(sizes[:-1], out=elem_off[1:])
    u_seq = e_seq[owner]
    u_cls = np.where(u_seq | (sizes < 2), 0, e_cls[owner]).astype(np.int8)
    ujmps = deltas[elem_off]
    # A sequential unit's stride is its constant delta -- except a
    # size-1 remainder unit has no body deltas at all, and the
    # reference Unit.stride defaults to 1 there.
    strides = np.where(u_seq, np.where(sizes > 1, ujmps, 1), 0)

    rows = np.searchsorted(row_ptr, elem_off, side="right") - 1
    new_row = np.zeros(total, dtype=bool)
    new_row[0] = True
    new_row[1:] = rows[1:] != rows[:-1]
    prev_rows = np.empty(total, dtype=np.int64)
    prev_rows[0] = -1
    prev_rows[1:] = rows[:-1]
    row_jumps = np.where(new_row, rows - prev_rows, 1)

    return deltas, {
        "sizes": sizes,
        "classes": u_cls,
        "ujmps": ujmps,
        "seq": u_seq,
        "strides": strides,
        "body_starts": elem_off + 1,
        "new_row": new_row,
        "row_jumps": row_jumps,
        "rows": rows,
    }


def _serialize(deltas: np.ndarray, u: dict[str, np.ndarray]) -> BatchedEncode:
    """Scatter the unit layout into one preallocated ctl byte buffer."""
    sizes = u["sizes"]
    total = sizes.size
    u_cls = u["classes"].astype(np.int64)
    u_seq = u["seq"]
    new_row = u["new_row"]
    rjmp = new_row & (u["row_jumps"] > 1)

    flags = u["classes"].astype(np.uint8)
    flags |= np.where(new_row, np.uint8(FLAG_NR), np.uint8(0))
    flags |= np.where(rjmp, np.uint8(FLAG_RJMP), np.uint8(0))
    flags |= np.where(u_seq, np.uint8(FLAG_SEQ), np.uint8(0))

    rjmp_extra = u["row_jumps"] - 1
    rjmp_sz = np.zeros(total, dtype=np.int64)
    if rjmp.any():
        rjmp_sz[rjmp] = varint_size_array(rjmp_extra[rjmp])
    ujmp_sz = varint_size_array(u["ujmps"])
    stride_sz = np.zeros(total, dtype=np.int64)
    if u_seq.any():
        stride_sz[u_seq] = varint_size_array(u["strides"][u_seq])
    body_bytes = np.where(u_seq, 0, (sizes - 1) * _WIDTH_BYTES_ARR[u_cls])
    unit_bytes = 2 + rjmp_sz + ujmp_sz + stride_sz + body_bytes

    offsets = np.zeros(total, dtype=np.int64)
    np.cumsum(unit_bytes[:-1], out=offsets[1:])
    stream_len = int(offsets[-1]) + int(unit_bytes[-1]) if total else 0

    buf = np.zeros(stream_len, dtype=np.uint8)
    buf[offsets] = flags
    buf[offsets + 1] = sizes.astype(np.uint8)
    pos = offsets + 2
    if rjmp.any():
        scatter_varints(buf, rjmp_extra[rjmp], pos[rjmp], rjmp_sz[rjmp])
    pos = pos + rjmp_sz
    scatter_varints(buf, u["ujmps"], pos, ujmp_sz)
    pos = pos + ujmp_sz
    if u_seq.any():
        scatter_varints(buf, u["strides"][u_seq], pos[u_seq], stride_sz[u_seq])
    body_offsets = pos + stride_sz

    body_starts = u["body_starts"]
    for cls in range(4):
        sel = np.flatnonzero(~u_seq & (u_cls == cls) & (sizes > 1))
        if not sel.size:
            continue
        lens = sizes[sel] - 1
        elems = deltas[_ranges(body_starts[sel], lens)]
        raw = elems.astype(WIDTH_DTYPES[cls]).view(np.uint8)
        buf[_ranges(body_offsets[sel], lens * WIDTH_BYTES[cls])] = raw

    table = UnitTable(
        flags=flags,
        sizes=sizes,
        classes=u["classes"],
        rows=u["rows"],
        new_row=new_row,
        seq=u_seq,
        ujmps=u["ujmps"],
        strides=u["strides"],
        body_offsets=body_offsets,
        ctl_offsets=np.append(offsets, stream_len),
    )
    counts = np.bincount(u_cls, minlength=4)
    return BatchedEncode(
        ctl=buf.tobytes(),
        table=table,
        class_counts=(int(counts[0]), int(counts[1]), int(counts[2]), int(counts[3])),
        new_rows=int(new_row.sum()),
        seq_units=int(u_seq.sum()),
    )


def encode_ctl_batched(
    row_ptr: np.ndarray,
    col_ind: np.ndarray,
    *,
    policy: str = "greedy",
    max_unit: int = MAX_UNIT_SIZE,
) -> BatchedEncode:
    """Encode a CSR structure to a ctl stream in vectorized passes.

    The result's ``ctl`` is byte-identical to the reference
    ``unitize`` + ``CtlWriter`` pipeline; its ``table`` is identical to
    ``scan_units(ctl)``.  Emits an ``encode.batched`` span carrying the
    unit/byte census, plus the same ``encode.csr_du.*`` counters the
    reference writer reports, so traces look the same either way.
    """
    row_ptr = np.asarray(row_ptr, dtype=np.int64)
    col_ind = np.asarray(col_ind, dtype=np.int64)
    with telemetry.span(
        "encode.batched",
        kind="csr-du",
        policy=policy,
        nrows=row_ptr.size - 1,
        nnz=col_ind.size,
    ) as sp:
        if col_ind.size == 0:
            if policy not in _POLICIES:
                raise FormatError(
                    f"unknown unit policy {policy!r}; choose from {_POLICIES}"
                )
            if not 2 <= max_unit <= MAX_UNIT_SIZE:
                raise FormatError(f"max_unit must be in [2, {MAX_UNIT_SIZE}]")
            result = _empty_encode()
        else:
            deltas, units = unit_layout(
                row_ptr, col_ind, policy=policy, max_unit=max_unit
            )
            result = _serialize(deltas, units)
        sp.add(nunits=result.nunits, ctl_bytes=len(result.ctl))
        if telemetry.enabled():
            record_ctl_stream(
                list(result.class_counts),
                new_rows=result.new_rows,
                seq_units=result.seq_units,
                ctl_bytes=len(result.ctl),
            )
    return result


def pack_value_index(inverse: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """CSR-VI ``val_ind`` packing through the batched pack path.

    The unique-value indexing itself is already one ``np.unique`` call;
    this narrows the inverse permutation to the addressing width in one
    vectorized cast and reports the packed byte count under the same
    ``encode.batched`` span the CSR-DU encoder uses, so setup-cost
    attribution sees both formats' encode work uniformly.
    """
    with telemetry.span(
        "encode.batched", kind="csr-vi", nnz=int(np.asarray(inverse).size)
    ) as sp:
        packed = np.ascontiguousarray(np.asarray(inverse).astype(dtype, copy=False))
        sp.add(val_ind_bytes=packed.nbytes)
    return packed
