"""The CSR-DU ``ctl`` byte stream (serializer / deserializer).

Wire layout per unit (Section IV, Table I of the paper)::

    +--------+-------+----------------+----------------+-----------------------+
    | uflags | usize | [rjmp: varint] | ujmp: varint   | ucis: (usize-1)*width |
    +--------+-------+----------------+----------------+-----------------------+

``uflags`` bit layout:

* bits 0-1: width class of the ``ucis`` deltas (0 -> u8 ... 3 -> u64);
* bit 6 (``FLAG_NR``): the unit opens a new row;
* bit 5 (``FLAG_RJMP``): the new row is more than one row below the
  previous one; the extra advance (``row_jump - 1``) follows as a varint.
  This is our extension for matrices with empty rows -- the paper's
  scheme implicitly assumes none (its evaluation matrices have none) and
  degenerates to it when the flag is never set;
* bit 4 (``FLAG_SEQ``): a *sequential* unit -- instead of ``ucis``, a
  single varint stride follows ``ujmp`` and all ``usize - 1`` deltas
  equal it (the ``"seq"`` encoder policy's extension; see
  :mod:`repro.compress.delta`).

The decoder starts at row ``-1`` so the very first unit's NR flag
advances to row 0, exactly as the paper's Fig. 3 kernel does
(``y_indx++`` on NR with ``y_indx`` initialized before row 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.compress.delta import Unit
from repro.errors import EncodingError
from repro.telemetry import core as telemetry
from repro.telemetry.metrics import record_ctl_stream
from repro.util.bitops import (
    WIDTH_BYTES,
    decode_varint,
    encode_varint,
    pack_fixed,
    unpack_fixed,
    varint_size,
)

FLAG_NR = 0x40
FLAG_RJMP = 0x20
FLAG_SEQ = 0x10
_CLASS_MASK = 0x03
_KNOWN_MASK = _CLASS_MASK | FLAG_NR | FLAG_RJMP | FLAG_SEQ


class CtlWriter:
    """Accumulates units into a ctl byte stream.

    Alongside the stream the writer keeps the encode census --
    ``class_counts`` (units per delta width class), ``new_rows`` and
    ``seq_units`` -- which :meth:`getvalue` reports to the telemetry
    collector when one is active (the paper's Table I statistics, per
    encode).

    :meth:`getvalue` *finalizes* the writer: the census is reported
    exactly once, and both a second ``getvalue()`` and any further
    ``append()`` raise :class:`~repro.errors.EncodingError`.  (An
    earlier version silently skipped the census on re-reads, which made
    double-report bugs undetectable; now misuse is loud.)
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self.nunits = 0
        self.class_counts = [0, 0, 0, 0]
        self.new_rows = 0
        self.seq_units = 0
        self._finalized = False

    @property
    def finalized(self) -> bool:
        """True once :meth:`getvalue` has consumed the writer."""
        return self._finalized

    def append(self, unit: Unit) -> None:
        """Serialize one :class:`~repro.compress.delta.Unit`."""
        if self._finalized:
            raise EncodingError("CtlWriter is finalized; cannot append after getvalue")
        usize = unit.usize
        if not 1 <= usize <= 255:
            raise EncodingError(f"unit size {usize} out of [1, 255]")
        flags = unit.cls & _CLASS_MASK
        if unit.new_row:
            flags |= FLAG_NR
            if unit.row_jump > 1:
                flags |= FLAG_RJMP
        elif unit.row_jump != 1:
            raise EncodingError("row_jump > 1 requires new_row")
        if unit.seq:
            if unit.deltas.size and np.any(unit.deltas != unit.deltas[0]):
                raise EncodingError("sequential unit requires constant deltas")
            flags |= FLAG_SEQ
        self._buf.append(flags)
        self._buf.append(usize)
        if flags & FLAG_RJMP:
            encode_varint(unit.row_jump - 1, self._buf)
        encode_varint(unit.ujmp, self._buf)
        if unit.seq:
            encode_varint(unit.stride, self._buf)
        elif unit.deltas.size:
            self._buf += pack_fixed(unit.deltas, unit.cls)
        self.nunits += 1
        self.class_counts[unit.cls & _CLASS_MASK] += 1
        if unit.new_row:
            self.new_rows += 1
        if unit.seq:
            self.seq_units += 1

    def getvalue(self) -> bytes:
        """Finalize the writer and return the stream as immutable bytes.

        Reports the encode census to the active telemetry collector and
        marks the writer finished; calling :meth:`getvalue` a second
        time (or :meth:`append` afterwards) raises
        :class:`~repro.errors.EncodingError`.
        """
        if self._finalized:
            raise EncodingError(
                "CtlWriter.getvalue called twice; the census is reported once "
                "per encode -- keep the returned bytes instead"
            )
        self._finalized = True
        if telemetry.enabled():
            record_ctl_stream(
                self.class_counts,
                new_rows=self.new_rows,
                seq_units=self.seq_units,
                ctl_bytes=len(self._buf),
            )
        return bytes(self._buf)


class CtlReader:
    """Iterates the units of a ctl stream.

    The reader tracks the current row itself (from NR/RJMP flags), so
    the yielded :class:`~repro.compress.delta.Unit` objects carry
    absolute row numbers.
    """

    def __init__(self, ctl: bytes) -> None:
        self._ctl = ctl

    def __iter__(self) -> Iterator[Unit]:
        ctl = self._ctl
        pos = 0
        n = len(ctl)
        row = -1
        while pos < n:
            if pos + 2 > n:
                raise EncodingError("truncated unit header")
            flags = ctl[pos]
            usize = ctl[pos + 1]
            pos += 2
            if flags & ~_KNOWN_MASK:
                raise EncodingError(f"unknown flag bits 0x{flags & ~_KNOWN_MASK:02x}")
            if usize == 0:
                raise EncodingError("unit size 0 is invalid")
            cls = flags & _CLASS_MASK
            new_row = bool(flags & FLAG_NR)
            jump = 1
            if flags & FLAG_RJMP:
                if not new_row:
                    raise EncodingError("RJMP flag without NR")
                extra, pos = decode_varint(ctl, pos)
                jump += extra
            ujmp, pos = decode_varint(ctl, pos)
            if new_row:
                row += jump
            elif row < 0:
                raise EncodingError("stream does not start with a new-row unit")
            seq = bool(flags & FLAG_SEQ)
            if seq:
                stride, pos = decode_varint(ctl, pos)
                deltas = np.full(usize - 1, stride, dtype=np.int64)
            else:
                deltas, pos = unpack_fixed(ctl, usize - 1, cls, pos)
            yield Unit(
                row=row,
                new_row=new_row,
                row_jump=jump,
                ujmp=ujmp,
                deltas=deltas.astype(np.int64),
                cls=cls,
                seq=seq,
            )


@dataclass(frozen=True)
class DecodedUnits:
    """Structure-of-arrays view of a whole ctl stream.

    Produced once by :func:`decode_units` and consumed by the vectorized
    CSR-DU kernels and by the machine model's traffic accounting.

    Attributes
    ----------
    rows:
        Row of each unit.
    sizes:
        ``usize`` of each unit.
    classes:
        Width class of each unit.
    offsets:
        CSR-style offsets into ``columns`` per unit (``nunits + 1``).
    columns:
        Absolute column indices of every nonzero, unit-concatenated --
        i.e. the fully decoded ``col_ind``.
    new_row:
        Boolean mask of first-of-row units.
    seq:
        Boolean mask of sequential (constant-stride) units.
    ctl_offsets:
        Byte offset of each unit in the ctl stream (``nunits + 1``
        entries, last is the stream length) -- this is exactly the
        per-thread ctl offset the paper's multithreaded CSR-DU needs
        (Section IV, last paragraph), and the traffic model's source of
        exact per-thread byte counts.
    """

    rows: np.ndarray
    sizes: np.ndarray
    classes: np.ndarray
    offsets: np.ndarray
    columns: np.ndarray
    new_row: np.ndarray
    ctl_offsets: np.ndarray
    seq: np.ndarray

    @property
    def nunits(self) -> int:
        return self.rows.size


def decode_units(ctl: bytes, nnz: int) -> DecodedUnits:
    """Decode a full ctl stream into a :class:`DecodedUnits` bundle.

    ``nnz`` is the expected nonzero count; a mismatch raises
    :class:`~repro.errors.EncodingError` (it means the stream was built
    for a different matrix).
    """
    rows: list[int] = []
    sizes: list[int] = []
    classes: list[int] = []
    new_row: list[bool] = []
    seq: list[bool] = []
    col_chunks: list[np.ndarray] = []
    ctl_offsets: list[int] = [0]
    col = 0
    total = 0
    pos = 0
    for unit in CtlReader(ctl):
        if unit.new_row:
            col = 0
        cols = unit.columns(col)
        col = int(cols[-1])
        rows.append(unit.row)
        sizes.append(unit.usize)
        classes.append(unit.cls)
        new_row.append(unit.new_row)
        seq.append(unit.seq)
        col_chunks.append(cols)
        total += unit.usize
        pos += (
            2
            + (varint_size(unit.row_jump - 1) if unit.row_jump > 1 else 0)
            + varint_size(unit.ujmp)
            + (
                varint_size(unit.stride)
                if unit.seq
                else (unit.usize - 1) * WIDTH_BYTES[unit.cls]
            )
        )
        ctl_offsets.append(pos)
    if pos != len(ctl):
        raise EncodingError(
            f"reconstructed ctl length {pos} != stream length {len(ctl)}"
        )
    if total != nnz:
        raise EncodingError(f"ctl stream decodes {total} nonzeros, expected {nnz}")
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes_arr, out=offsets[1:])
    columns = (
        np.concatenate(col_chunks) if col_chunks else np.empty(0, dtype=np.int64)
    )
    return DecodedUnits(
        rows=np.asarray(rows, dtype=np.int64),
        sizes=sizes_arr,
        classes=np.asarray(classes, dtype=np.int8),
        offsets=offsets,
        columns=columns.astype(np.int64),
        new_row=np.asarray(new_row, dtype=bool),
        ctl_offsets=np.asarray(ctl_offsets, dtype=np.int64),
        seq=np.asarray(seq, dtype=bool),
    )
