"""Unique-value indexing for CSR-VI (Section V of the paper).

The ``values`` array of CSR is replaced by:

* ``vals_unique`` -- the distinct numerical values, and
* ``val_ind`` -- for each nonzero, the position of its value in
  ``vals_unique``, stored at the narrowest unsigned width that can
  address the unique count (u8 / u16 / u32).

The paper's compression uses a hash table in ``O(nnz)``; here NumPy's
sort-based :func:`numpy.unique` plays that role (same output, and the
inverse array *is* ``val_ind``).

The *total-to-unique ratio* ``ttu = nnz / len(vals_unique)`` is the
paper's applicability criterion: CSR-VI is only worthwhile for
``ttu > 5`` (empirical threshold from Section VI-E).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError
from repro.telemetry import core as telemetry
from repro.telemetry.metrics import record_unique_values

#: The paper's empirical applicability threshold for CSR-VI.
TTU_THRESHOLD = 5.0


def index_dtype_for(unique_count: int) -> np.dtype:
    """Narrowest unsigned dtype addressing *unique_count* values.

    The paper's rule: with ``uv`` unique values and
    ``2**8 < uv <= 2**16``, a 2-byte integer is used, etc.
    """
    if unique_count < 0:
        raise FormatError("unique_count must be non-negative")
    if unique_count <= 1 << 8:
        return np.dtype(np.uint8)
    if unique_count <= 1 << 16:
        return np.dtype(np.uint16)
    if unique_count <= 1 << 32:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


@dataclass(frozen=True)
class UniqueValues:
    """Result of :func:`unique_index_values`.

    Attributes
    ----------
    vals_unique:
        Sorted distinct values.
    val_ind:
        Per-nonzero index into ``vals_unique`` (narrow unsigned dtype).
    ttu:
        Total-to-unique ratio (``inf`` for an all-equal nonempty array,
        0 for an empty one by convention).
    """

    vals_unique: np.ndarray
    val_ind: np.ndarray
    ttu: float

    @property
    def nbytes(self) -> int:
        """Bytes of the compressed value representation."""
        return self.vals_unique.nbytes + self.val_ind.nbytes

    def reconstruct(self) -> np.ndarray:
        """The original ``values`` array (gather)."""
        return self.vals_unique[self.val_ind]


def total_to_unique_ratio(values: np.ndarray) -> float:
    """``nnz / unique_count`` without building the index arrays."""
    values = np.asarray(values)
    if values.size == 0:
        return 0.0
    return values.size / np.unique(values).size


def unique_index_values(values: np.ndarray) -> UniqueValues:
    """Build the CSR-VI value structure from a values array.

    NaNs are rejected: ``NaN != NaN`` breaks the round-trip guarantee
    (and a matrix with NaN entries is broken input anyway).
    """
    values = np.asarray(values)
    if values.size and np.isnan(values).any():
        raise FormatError("values contain NaN; CSR-VI requires comparable values")
    from repro.compress.encode_batched import pack_value_index

    with telemetry.span("encode.csr_vi.unique", nnz=values.size):
        vals_unique, inverse = np.unique(values, return_inverse=True)
        dtype = index_dtype_for(vals_unique.size)
    ttu = values.size / vals_unique.size if vals_unique.size else 0.0
    if telemetry.enabled():
        record_unique_values(
            unique_count=vals_unique.size,
            val_ind_bits=dtype.itemsize * 8,
            ttu=float(ttu),
            nnz=values.size,
        )
    return UniqueValues(
        vals_unique=vals_unique,
        val_ind=pack_value_index(inverse, dtype),
        ttu=float(ttu),
    )
