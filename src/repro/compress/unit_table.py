"""Structure-of-arrays unit table and width-class batched ctl decode.

The on-the-fly CSR-DU kernel (:func:`repro.kernels.vectorized.
spmv_csr_du_unitwise`) pays one Python loop iteration *per unit*: for a
million-nonzero matrix with ~8-element units that is ~125k interpreter
round-trips per SpMV, so its throughput floor is the interpreter, not
memory bandwidth -- the opposite of the regime the paper reasons about.
This module removes that floor in two steps:

1. :func:`scan_units` walks the ctl byte stream **once** and records
   every unit's header fields -- flags, width class, size, absolute
   row, ``ujmp``, stride, and the byte offset of its fixed-width delta
   body -- into a :class:`UnitTable` (structure-of-arrays, one NumPy
   array per field).  The scan parses headers only; delta bodies are
   skipped, not decoded.

2. :class:`BatchedColumnDecoder` groups the units of a
   :class:`UnitTable` by *width class* (u8/u16/u32/u64, plus the
   SEQ-stride and singleton cases) and decodes each class with a
   constant number of vectorized passes: one byte gather over the ctl
   stream, one ``view`` at the class's fixed width, one cumulative sum
   restarted per unit (exact integer arithmetic), one scatter.  Total
   per-call work is O(#classes) NumPy operations over O(nnz) data --
   the same asymptotics a C decode loop has.

The decoder still re-reads every delta byte of the ctl stream and
recomputes all ``nnz`` column indices on every :meth:`~
BatchedColumnDecoder.columns` call; what is amortized across calls is
only the *variable-length header parse* (unit boundaries, varints),
which a C kernel resolves in a couple of cycles per unit but Python
cannot.  See DESIGN.md ("Kernel plans") for why this preserves the
paper's decode-on-the-fly timing semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compress.ctl import FLAG_NR, FLAG_RJMP, FLAG_SEQ, _KNOWN_MASK
from repro.errors import EncodingError
from repro.util.bitops import WIDTH_BYTES, WIDTH_DTYPES, decode_varint


@dataclass(frozen=True)
class UnitTable:
    """One ctl stream's unit headers, as parallel arrays.

    Attributes
    ----------
    flags, sizes, classes:
        Raw ``uflags`` byte, ``usize`` and width class of each unit.
    rows:
        Absolute row of each unit (NR/RJMP flags resolved).
    new_row, seq:
        First-of-row and sequential-unit masks.
    ujmps:
        Column distance of each unit's first nonzero from the previous
        nonzero (from column 0 at a row start).
    strides:
        Constant delta of sequential units (0 for plain units).
    body_offsets:
        Byte offset of each unit's fixed-width delta body in the ctl
        stream (the position right after the header varints; plain
        units own ``(usize - 1) * WIDTH_BYTES[cls]`` bytes there).
    ctl_offsets:
        Byte offset of each unit's header, plus the stream length as a
        final entry (``nunits + 1`` values) -- the per-thread ctl split
        points the paper's multithreaded CSR-DU needs.
    """

    flags: np.ndarray
    sizes: np.ndarray
    classes: np.ndarray
    rows: np.ndarray
    new_row: np.ndarray
    seq: np.ndarray
    ujmps: np.ndarray
    strides: np.ndarray
    body_offsets: np.ndarray
    ctl_offsets: np.ndarray

    @property
    def nunits(self) -> int:
        return self.sizes.size

    @property
    def nnz(self) -> int:
        return int(self.sizes.sum()) if self.sizes.size else 0


def scan_units(ctl: bytes) -> UnitTable:
    """Parse every unit header of *ctl* in one pass (bodies skipped).

    Raises :class:`~repro.errors.EncodingError` on the same malformed
    streams :class:`~repro.compress.ctl.CtlReader` rejects: truncated
    headers or bodies, unknown flag bits, zero unit sizes, RJMP without
    NR, and streams that do not open with a new-row unit.
    """
    n = len(ctl)
    pos = 0
    row = -1
    flags_l: list[int] = []
    sizes_l: list[int] = []
    rows_l: list[int] = []
    ujmps_l: list[int] = []
    strides_l: list[int] = []
    body_l: list[int] = []
    ctl_off: list[int] = []
    width_bytes = WIDTH_BYTES
    while pos < n:
        ctl_off.append(pos)
        if pos + 2 > n:
            raise EncodingError("truncated unit header")
        flags = ctl[pos]
        usize = ctl[pos + 1]
        pos += 2
        if flags & ~_KNOWN_MASK:
            raise EncodingError(f"unknown flag bits 0x{flags & ~_KNOWN_MASK:02x}")
        if usize == 0:
            raise EncodingError("unit size 0 is invalid")
        if flags & FLAG_NR:
            jump = 1
            if flags & FLAG_RJMP:
                extra, pos = decode_varint(ctl, pos)
                jump += extra
            row += jump
        else:
            if flags & FLAG_RJMP:
                raise EncodingError("RJMP flag without NR")
            if row < 0:
                raise EncodingError("stream does not start with a new-row unit")
        ujmp, pos = decode_varint(ctl, pos)
        if flags & FLAG_SEQ:
            stride, pos = decode_varint(ctl, pos)
            body = pos
        else:
            stride = 0
            body = pos
            pos += (usize - 1) * width_bytes[flags & 0x03]
            if pos > n:
                raise EncodingError("truncated fixed-width run")
        flags_l.append(flags)
        sizes_l.append(usize)
        rows_l.append(row)
        ujmps_l.append(ujmp)
        strides_l.append(stride)
        body_l.append(body)
    ctl_off.append(pos)
    flags_arr = np.asarray(flags_l, dtype=np.uint8)
    return UnitTable(
        flags=flags_arr,
        sizes=np.asarray(sizes_l, dtype=np.int64),
        classes=(flags_arr & 0x03).astype(np.int8),
        rows=np.asarray(rows_l, dtype=np.int64),
        new_row=(flags_arr & FLAG_NR).astype(bool),
        seq=(flags_arr & FLAG_SEQ).astype(bool),
        ujmps=np.asarray(ujmps_l, dtype=np.int64),
        strides=np.asarray(strides_l, dtype=np.int64),
        body_offsets=np.asarray(body_l, dtype=np.int64),
        ctl_offsets=np.asarray(ctl_off, dtype=np.int64),
    )


def _ranges(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenated ``[start, start + len)`` ranges, as one int64 array.

    ``_ranges([3, 10], [2, 3]) == [3, 4, 10, 11, 12]``.  Zero-length
    ranges must be filtered out by the caller.
    """
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if starts.size > 1:
        ends = np.cumsum(lens)
        out[ends[:-1]] = starts[1:] - (starts[:-1] + lens[:-1] - 1)
    return np.cumsum(out)


class _ClassGroup:
    """Per-call decode state for one width class's plain multi-delta units."""

    __slots__ = ("dtype", "body_index", "base_idx", "rest_pos", "firsts_rep")

    def __init__(self, dtype, body_index, base_idx, rest_pos, firsts_rep):
        self.dtype = dtype
        self.body_index = body_index  # byte gather index into the ctl stream
        self.base_idx = base_idx  # per delta: its unit's start in the class stream
        self.rest_pos = rest_pos  # per delta: global element position
        self.firsts_rep = firsts_rep  # per delta: its unit's first column


class BatchedColumnDecoder:
    """Width-class batched decode of a ctl stream's column indices.

    Built once per matrix (the *plan build*); :meth:`columns` then
    yields the absolute column index of every nonzero with O(#classes)
    NumPy passes.  The integer arithmetic is exact, so the result is
    element-for-element identical to the unitwise decoder's.

    Static structure -- sequential-unit ramps, singleton columns and
    every unit's first column -- is resolved at build time into a
    template; per call only the fixed-width delta bodies are re-read
    from the stream (they are the only per-element bytes the stream
    stores for plain units; SEQ units store a single stride varint
    that the header scan already consumed).
    """

    def __init__(self, ctl: bytes, table: UnitTable, nnz: int):
        self.table = table
        self._ctl_arr = np.frombuffer(ctl, dtype=np.uint8)
        sizes = table.sizes
        nunits = table.nunits
        offsets = np.zeros(nunits + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        if int(offsets[-1]) != nnz:
            raise EncodingError(
                f"ctl stream decodes {int(offsets[-1])} nonzeros, expected {nnz}"
            )
        self.offsets = offsets
        self.nnz = nnz

        plain = ~table.seq
        multi = plain & (sizes > 1)
        groups: list[_ClassGroup] = []
        delta_sums = np.zeros(nunits, dtype=np.int64)
        for cls in range(4):
            sel = np.flatnonzero(multi & (table.classes == cls))
            if not sel.size:
                continue
            width = WIDTH_BYTES[cls]
            lens = sizes[sel] - 1
            body_index = _ranges(table.body_offsets[sel], lens * width)
            dstarts = np.zeros(sel.size, dtype=np.int64)
            np.cumsum(lens[:-1], out=dstarts[1:])
            rep = np.repeat(np.arange(sel.size, dtype=np.intp), lens)
            group = _ClassGroup(
                dtype=WIDTH_DTYPES[cls],
                body_index=body_index,
                base_idx=dstarts[rep],
                rest_pos=_ranges(offsets[sel] + 1, lens),
                firsts_rep=sel[rep],  # patched to first columns below
            )
            # Decode this class once now: the per-unit delta sums feed
            # the first-column reconstruction.
            ext = self._class_prefix_sums(group)
            delta_sums[sel] = ext[dstarts + lens] - ext[dstarts]
            groups.append((sel, rep, group))

        sel_seq = np.flatnonzero(table.seq)
        if sel_seq.size:
            delta_sums[sel_seq] = table.strides[sel_seq] * (sizes[sel_seq] - 1)

        # Units chain within a row: each unit spans ujmp + sum(deltas)
        # columns from the previous nonzero (column 0 at a row start).
        # A cumulative sum over unit spans, restarted at new-row units,
        # gives every unit's last column; first = last - sum(deltas).
        spans = table.ujmps + delta_sums
        ext_span = np.zeros(nunits + 1, dtype=np.int64)
        np.cumsum(spans, out=ext_span[1:])
        if nunits:
            row_start_units = np.flatnonzero(table.new_row)
            grp = np.cumsum(table.new_row) - 1
            last_cols = ext_span[1:] - ext_span[row_start_units][grp]
        else:
            last_cols = np.empty(0, dtype=np.int64)
        self.first_cols = last_cols - delta_sums
        self.last_cols = last_cols

        # Static column template: unit first elements, SEQ ramps and
        # singletons never change between calls.
        static = np.zeros(nnz, dtype=np.int64)
        if nunits:
            static[offsets[:-1]] = self.first_cols
        seq_multi = np.flatnonzero(table.seq & (sizes > 1))
        if seq_multi.size:
            lens = sizes[seq_multi] - 1
            rep = np.repeat(np.arange(seq_multi.size, dtype=np.intp), lens)
            ramp = _ranges(np.ones(seq_multi.size, dtype=np.int64), lens)
            static[_ranges(offsets[seq_multi] + 1, lens)] = (
                self.first_cols[seq_multi][rep] + table.strides[seq_multi][rep] * ramp
            )
        self._static_cols = static
        self._groups = [g for _, _, g in groups]
        for sel, rep, g in groups:
            g.firsts_rep = self.first_cols[sel][rep]

    def _class_prefix_sums(self, group: _ClassGroup) -> np.ndarray:
        """Gather one class's delta bytes and return ``[0, cumsum(deltas)]``."""
        raw = self._ctl_arr[group.body_index]
        deltas = raw.view(group.dtype)
        ext = np.empty(deltas.size + 1, dtype=np.int64)
        ext[0] = 0
        np.cumsum(deltas, out=ext[1:])
        return ext

    def columns(self) -> np.ndarray:
        """Absolute column of every nonzero (fresh int64 array per call).

        Per width class: gather the delta bytes from the ctl stream,
        reinterpret at the fixed width, prefix-sum with per-unit
        restarts, add the unit first columns, scatter into place.
        """
        cols = self._static_cols.copy()
        for g in self._groups:
            ext = self._class_prefix_sums(g)
            cols[g.rest_pos] = g.firsts_rep + ext[1:] - ext[g.base_idx]
        return cols
