"""Structure-keyed cache for format conversions (encodes).

A bench sweep converts the same matrix to the same format once per
(threads, kernel, placement, ...) cell, and :class:`~repro.parallel.
executor.ParallelSpMV` re-encodes every row chunk for every thread
count -- all of it identical work, because an encode depends only on
the source structure and the encoding parameters.  This module keys
that work so it happens once:

``(matrix token, target format, sorted kwargs, row range)``

* **matrix token** -- a process-unique integer stamped on the source
  matrix object the first time it is seen (identity-based: two equal
  matrices built separately encode twice; the sweeps this cache serves
  always re-present the *same* object).
* **sorted kwargs** -- the ``from_csr`` parameters (``policy``,
  ``max_unit``, ``encoder``, BCSR block shape, ...), order-insensitive.
* **row range** -- ``None`` for whole-matrix conversions, ``(lo, hi)``
  for a :meth:`~repro.formats.csr.CSRMatrix.row_slice` chunk, so
  partition-aligned chunk encodes are shared across sweep cells with
  the same boundaries.

Every lookup emits a ``convert.cache.hit`` or ``convert.cache.miss``
counter labelled with the target format, so traces show exactly how
much encode work the cache absorbed.  Eviction is LRU with a bounded
entry count (encodes are matrix-sized; an unbounded cache would pin
every matrix of a 77-matrix sweep) and, optionally, a bounded *byte*
total (``max_bytes``): 128 entries is a safe count for bench-sized
matrices but 128 out-of-core shards is exactly the RAM blow-up the
storage layer exists to avoid, so a byte budget caps the resident
footprint directly.  Byte-driven evictions emit a
``convert.cache.evict.bytes`` counter (the bytes released, labelled
with the evicted entry's format).
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from typing import Any

from repro.obs import core as obs
from repro.telemetry import core as telemetry

#: Attribute used to stamp source matrices with their cache token.
TOKEN_ATTR = "_encode_cache_token"

_token_counter = itertools.count(1)


def matrix_token(matrix) -> int:
    """Process-unique identity token for *matrix* (stamped on first use).

    A stamped attribute (not ``id()``) so the token cannot be recycled
    by the allocator after the matrix is garbage collected.  Objects
    with ``__slots__`` that cannot take the attribute fall back to
    ``id()`` -- correct while the caller keeps the matrix alive, which
    a cache lookup inherently does for the duration of the call.
    """
    token = getattr(matrix, TOKEN_ATTR, None)
    if token is None:
        token = next(_token_counter)
        try:
            setattr(matrix, TOKEN_ATTR, token)
        except AttributeError:
            return id(matrix)
    return token


def _freeze(value: Any) -> Any:
    """Hashable view of a kwargs value (lists/dicts from configs)."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def cache_key(
    matrix, format_name: str, kwargs: dict, rows: tuple[int, int] | None
) -> tuple:
    """The full cache key for one conversion request."""
    frozen = tuple(sorted((k, _freeze(v)) for k, v in kwargs.items()))
    return (matrix_token(matrix), format_name, frozen, rows)


class ConvertCache:
    """Bounded LRU of finished conversions, keyed on :func:`cache_key`.

    Thread-safe: ``ParallelSpMV`` instances built concurrently (and the
    harness driving them) may share one cache.  A hit moves the entry
    to the fresh end; insertion past ``capacity`` (entries) or
    ``max_bytes`` (summed ``storage().total_bytes``) evicts stalest
    first.  An entry larger than ``max_bytes`` on its own is returned
    to the caller but never cached -- caching it would evict everything
    else for a single-use giant.
    """

    def __init__(self, capacity: int = 128, *, max_bytes: int | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        # key -> (result, entry_bytes)
        self._entries: OrderedDict[tuple, tuple[Any, int]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.total_bytes = 0
        self.evicted_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.total_bytes = 0

    def invalidate(
        self,
        matrix,
        format_name: str,
        *,
        rows: tuple[int, int] | None = None,
        **kwargs,
    ) -> bool:
        """Drop one cached conversion; ``True`` if an entry was evicted.

        Used by the hardened executor: a chunk whose cached encode
        fails at decode time is invalidated and re-encoded from the
        source before the bounded retry, so a poisoned cache entry
        cannot fail the same chunk twice.
        """
        key = cache_key(matrix, format_name, kwargs, rows)
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self.total_bytes -= entry[1]
            return entry is not None

    def get_or_convert(
        self,
        matrix,
        format_name: str,
        *,
        rows: tuple[int, int] | None = None,
        **kwargs,
    ):
        """The converted matrix, encoding only on a cache miss.

        With ``rows=(lo, hi)`` the source is row-sliced first (through
        CSR) and the slice bounds join the key; the returned chunk is
        shared by every caller presenting the same bounds.
        """
        key = cache_key(matrix, format_name, kwargs, rows)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if entry is not None:
            telemetry.count("convert.cache.hit", 1, format=format_name)
            obs.mark("convert.cache.hit", 1, format=format_name)
            return entry[0]
        telemetry.count("convert.cache.miss", 1, format=format_name)
        obs.mark("convert.cache.miss", 1, format=format_name)
        # Conversion runs outside the lock: encodes are the expensive
        # part, and two racing misses on one key just do the work twice
        # (both results are equivalent; last insert wins).
        from repro.formats.conversions import convert, to_csr

        source = matrix
        if rows is not None:
            source = to_csr(matrix).row_slice(rows[0], rows[1])
        result = convert(source, format_name, **kwargs)
        try:
            entry_bytes = int(result.storage().total_bytes)
        except Exception:
            entry_bytes = 0
        if self.max_bytes is not None and entry_bytes > self.max_bytes:
            # Too big to ever fit: hand it back uncached rather than
            # flushing the whole cache for one giant entry.
            with self._lock:
                self.misses += 1
            return result
        evicted: list[tuple[tuple, int]] = []
        with self._lock:
            self.misses += 1
            stale = self._entries.pop(key, None)
            if stale is not None:
                self.total_bytes -= stale[1]
            self._entries[key] = (result, entry_bytes)
            self.total_bytes += entry_bytes
            while len(self._entries) > self.capacity or (
                self.max_bytes is not None
                and self.total_bytes > self.max_bytes
            ):
                old_key, (_, old_bytes) = self._entries.popitem(last=False)
                self.total_bytes -= old_bytes
                self.evicted_bytes += old_bytes
                evicted.append((old_key, old_bytes))
        for old_key, old_bytes in evicted:
            # old_key[1] is the entry's target format (see cache_key).
            telemetry.count(
                "convert.cache.evict.bytes", old_bytes, format=old_key[1]
            )
            obs.mark("convert.cache.evict.bytes", old_bytes, format=old_key[1])
        return result


#: Process-wide default cache (ParallelSpMV and the bench harness share
#: it unless handed an explicit instance).
DEFAULT_CACHE = ConvertCache()


def cached_convert(
    matrix,
    format_name: str,
    *,
    rows: tuple[int, int] | None = None,
    cache: ConvertCache | None = None,
    **kwargs,
):
    """Convert through a cache (the module default when none is given)."""
    # Explicit None check: ConvertCache defines __len__, so an *empty*
    # caller-supplied cache must not be mistaken for "no cache".
    target = DEFAULT_CACHE if cache is None else cache
    return target.get_or_convert(matrix, format_name, rows=rows, **kwargs)
