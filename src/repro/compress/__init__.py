"""Compression substrates: delta/unit encoding (CSR-DU) and value indexing (CSR-VI)."""

from repro.compress.delta import (
    Unit,
    column_deltas,
    split_row_units,
    unitize,
)
from repro.compress.ctl import (
    CtlReader,
    CtlWriter,
    DecodedUnits,
    FLAG_NR,
    FLAG_RJMP,
    decode_units,
)
from repro.compress.unit_table import (
    BatchedColumnDecoder,
    UnitTable,
    scan_units,
)
from repro.compress.unique import (
    UniqueValues,
    index_dtype_for,
    total_to_unique_ratio,
    unique_index_values,
)

__all__ = [
    "Unit",
    "column_deltas",
    "split_row_units",
    "unitize",
    "CtlReader",
    "CtlWriter",
    "DecodedUnits",
    "FLAG_NR",
    "FLAG_RJMP",
    "decode_units",
    "BatchedColumnDecoder",
    "UnitTable",
    "scan_units",
    "UniqueValues",
    "index_dtype_for",
    "total_to_unique_ratio",
    "unique_index_values",
]
