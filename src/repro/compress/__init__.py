"""Compression substrates: delta/unit encoding (CSR-DU) and value indexing (CSR-VI)."""

from repro.compress.delta import (
    Unit,
    column_deltas,
    matrix_deltas,
    split_row_units,
    unitize,
)
from repro.compress.encode_batched import (
    BatchedEncode,
    encode_ctl_batched,
    pack_value_index,
    unit_layout,
)
from repro.compress.encode_cache import (
    ConvertCache,
    cached_convert,
)
from repro.compress.ctl import (
    CtlReader,
    CtlWriter,
    DecodedUnits,
    FLAG_NR,
    FLAG_RJMP,
    decode_units,
)
from repro.compress.unit_table import (
    BatchedColumnDecoder,
    UnitTable,
    scan_units,
)
from repro.compress.unique import (
    UniqueValues,
    index_dtype_for,
    total_to_unique_ratio,
    unique_index_values,
)

__all__ = [
    "Unit",
    "column_deltas",
    "matrix_deltas",
    "split_row_units",
    "unitize",
    "BatchedEncode",
    "encode_ctl_batched",
    "pack_value_index",
    "unit_layout",
    "ConvertCache",
    "cached_convert",
    "CtlReader",
    "CtlWriter",
    "DecodedUnits",
    "FLAG_NR",
    "FLAG_RJMP",
    "decode_units",
    "BatchedColumnDecoder",
    "UnitTable",
    "scan_units",
    "UniqueValues",
    "index_dtype_for",
    "total_to_unique_ratio",
    "unique_index_values",
]
