"""Delta analysis and unit splitting for CSR-DU.

CSR-DU (Section IV of the paper) logically divides the nonzeros of each
row into *units*.  A unit stores:

* ``ujmp`` -- the column distance of its first nonzero from the previous
  nonzero of the row (or from column 0 at a row start), as a varint;
* ``ucis`` -- the remaining ``usize - 1`` column deltas, all at one fixed
  width (u8 / u16 / u32 / u64) recorded in the unit's flags.

The encoder here follows the paper's one-pass greedy construction
(``O(nnz)``): deltas are accumulated into the current unit while they
share the unit's width class; a width-class change, a row boundary, or
the 255-element size cap finalizes the unit.  Because the *first* delta
of a unit is stored as a varint, a unit may open with a delta of any
class -- the class is fixed by its second element.  The implementation
is vectorized over *runs* of equal width class rather than looping per
element.

Three policies are exposed:

* ``"greedy"`` (default, the paper's construction) -- as above;
* ``"aligned"`` -- finalizes strictly at every class change, never
  letting a unit open with an out-of-class first delta.  It is kept as
  an ablation knob: it fragments alternating-class rows and shows why
  the greedy stealing of the first delta matters;
* ``"seq"`` -- greedy plus *sequential units*: a maximal run of equal
  deltas (a strided or contiguous stretch, as stencils and diagonal
  matrices produce) is stored as a single varint stride instead of
  ``usize - 1`` fixed-width values.  This is the direction the paper's
  line of work later took (CSX's dense/strided substructures); it is
  an extension beyond the ICPP'08 format, benchmarked as ABL-6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EncodingError, FormatError
from repro.telemetry import core as telemetry
from repro.util.bitops import width_class_array

#: Maximum nonzeros per unit: ``usize`` is stored in one byte.
MAX_UNIT_SIZE = 255

#: Minimum body length of equal deltas worth a sequential unit: the
#: header (2 bytes + 2 varints) must undercut per-element deltas.
MIN_SEQ_RUN = 5

_POLICIES = ("greedy", "aligned", "seq")


@dataclass(frozen=True)
class Unit:
    """One CSR-DU unit, in decoded (pre-serialization) form.

    Attributes
    ----------
    row:
        Row index the unit belongs to (units never span rows).
    new_row:
        True when this is the first unit of its row.
    row_jump:
        Rows advanced when the unit opens a new row (1 for the common
        case; > 1 when empty rows are skipped -- our extension for
        empty-row support, serialized behind the RJMP flag).
    ujmp:
        Column distance of the first nonzero from the previous one
        (from column 0 at a row start).
    deltas:
        The ``usize - 1`` remaining column deltas (may be empty).
    cls:
        Width class (0..3) of ``deltas``; 0 when there are none.
    seq:
        Sequential unit: all deltas equal one constant *stride*,
        serialized as a single varint instead of ``usize - 1``
        fixed-width values (the ``"seq"`` policy extension).
    """

    row: int
    new_row: bool
    row_jump: int
    ujmp: int
    deltas: np.ndarray
    cls: int
    seq: bool = False

    @property
    def stride(self) -> int:
        """The constant delta of a sequential unit (requires ``seq``)."""
        if not self.seq:
            raise EncodingError("stride is only defined for sequential units")
        return int(self.deltas[0]) if self.deltas.size else 1

    @property
    def usize(self) -> int:
        """Number of nonzeros covered by the unit (1 + len(deltas))."""
        return 1 + len(self.deltas)

    def columns(self, start_col: int) -> np.ndarray:
        """Absolute column indices, given the column preceding the unit."""
        first = start_col + self.ujmp
        return first + np.concatenate(([0], np.cumsum(self.deltas)))


def column_deltas(cols: np.ndarray) -> np.ndarray:
    """Per-row column deltas for one row's sorted column indices.

    ``deltas[0]`` is the jump from column 0 (i.e. ``cols[0]`` itself);
    the rest are consecutive differences.  Strictly increasing columns
    are required -- duplicates would need a zero delta, which CSR-DU
    supports, but duplicate entries in a sparse matrix are a
    construction error caught earlier.
    """
    cols = np.asarray(cols, dtype=np.int64)
    if cols.size == 0:
        return cols.copy()
    deltas = np.empty_like(cols)
    deltas[0] = cols[0]
    np.subtract(cols[1:], cols[:-1], out=deltas[1:])
    if np.any(deltas[1:] <= 0):
        raise EncodingError("row columns must be strictly increasing")
    if deltas[0] < 0:
        raise EncodingError("negative first column")
    return deltas


class _UnitBuilder:
    """Accumulates one row's units, tracking the new-row flag."""

    def __init__(self, row: int, row_jump: int):
        self.row = row
        self.row_jump = row_jump
        self.new_row = True
        self.units: list[Unit] = []

    def emit(self, ujmp: int, body: np.ndarray, cls: int | None = None) -> None:
        if cls is None:
            cls = int(width_class_array(body).max()) if body.size else 0
        self.units.append(
            Unit(
                row=self.row,
                new_row=self.new_row,
                row_jump=self.row_jump if self.new_row else 1,
                ujmp=int(ujmp),
                deltas=body.astype(np.int64, copy=True),
                cls=cls,
            )
        )
        self.new_row = False

    def emit_seq(self, ujmp: int, stride: int, count: int) -> None:
        self.units.append(
            Unit(
                row=self.row,
                new_row=self.new_row,
                row_jump=self.row_jump if self.new_row else 1,
                ujmp=int(ujmp),
                deltas=np.full(count, stride, dtype=np.int64),
                cls=0,
                seq=True,
            )
        )
        self.new_row = False


def _split_plain(
    deltas: np.ndarray,
    policy: str,
    max_unit: int,
    out: _UnitBuilder,
    classes: np.ndarray | None = None,
) -> None:
    """Greedy / aligned unit splitting over one delta segment.

    *classes* may be passed precomputed (the whole-matrix encoder
    computes them in one vectorized pass); each emitted unit's class is
    its run's class, so no per-unit recomputation happens.
    """
    if deltas.size == 0:
        return
    if classes is None:
        classes = width_class_array(deltas)
    boundaries = np.flatnonzero(classes[1:] != classes[:-1]) + 1
    run_starts = np.concatenate(([0], boundaries, [deltas.size]))
    pending: int | None = None  # a singleton run held back to become a ujmp
    for r in range(run_starts.size - 1):
        start, stop = int(run_starts[r]), int(run_starts[r + 1])
        length = stop - start
        cls = int(classes[start])
        last_run = r == run_starts.size - 2
        if policy == "greedy" and length == 1 and pending is None and not last_run:
            pending = start
            continue
        pos = start
        if pending is not None:
            # Pending singleton becomes the ujmp of the first unit here.
            body_len = min(length, max_unit - 1)
            out.emit(deltas[pending], deltas[pos : pos + body_len], cls=cls)
            pos += body_len
            pending = None
        while pos < stop:
            body_len = min(stop - pos - 1, max_unit - 1)
            body_end = pos + 1 + body_len
            out.emit(
                deltas[pos],
                deltas[pos + 1 : body_end],
                cls=cls if body_len else 0,
            )
            pos = body_end
    if pending is not None:  # segment ended on a held singleton
        out.emit(deltas[pending], deltas[:0], cls=0)


def _split_seq(deltas: np.ndarray, max_unit: int, out: _UnitBuilder) -> None:
    """Sequential-unit policy: carve constant-delta runs, greedy elsewhere.

    A maximal run of equal deltas of length >= ``MIN_SEQ_RUN + 1``
    becomes sequential units (its first element doubles as the ujmp,
    which equals the stride); everything between runs is greedy.
    """
    n = deltas.size
    change = np.flatnonzero(deltas[1:] != deltas[:-1]) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [n]))
    plain_from = 0
    for s, e in zip(starts.tolist(), ends.tolist()):
        length = e - s
        if length < MIN_SEQ_RUN + 1:
            continue
        if s > plain_from:
            _split_plain(deltas[plain_from:s], "greedy", max_unit, out)
        stride = int(deltas[s])
        remaining = length
        while remaining > 0:
            body = min(remaining - 1, max_unit - 1)
            out.emit_seq(stride, stride, body)
            remaining -= 1 + body
        plain_from = e
    if plain_from < n:
        _split_plain(deltas[plain_from:], "greedy", max_unit, out)


def split_row_units(
    cols: np.ndarray,
    row: int,
    row_jump: int = 1,
    *,
    policy: str = "greedy",
    max_unit: int = MAX_UNIT_SIZE,
) -> list[Unit]:
    """Split one row's column indices into units.

    Parameters mirror :func:`unitize`; this is the per-row worker and is
    also handy in tests for checking Table I of the paper directly.
    """
    if policy not in _POLICIES:
        raise FormatError(f"unknown unit policy {policy!r}; choose from {_POLICIES}")
    if not 2 <= max_unit <= MAX_UNIT_SIZE:
        raise FormatError(f"max_unit must be in [2, {MAX_UNIT_SIZE}]")
    deltas = column_deltas(cols)
    if deltas.size == 0:
        return []
    builder = _UnitBuilder(row, row_jump)
    if policy == "seq":
        _split_seq(deltas, max_unit, builder)
    else:
        _split_plain(deltas, policy, max_unit, builder)
    return builder.units


def unitize(
    row_ptr: np.ndarray,
    col_ind: np.ndarray,
    *,
    policy: str = "greedy",
    max_unit: int = MAX_UNIT_SIZE,
) -> list[Unit]:
    """Split a whole CSR structure into CSR-DU units.

    Rows with no nonzeros produce no unit; the following non-empty row's
    first unit carries the accumulated ``row_jump``.
    """
    if policy not in _POLICIES:
        raise FormatError(f"unknown unit policy {policy!r}; choose from {_POLICIES}")
    if not 2 <= max_unit <= MAX_UNIT_SIZE:
        raise FormatError(f"max_unit must be in [2, {MAX_UNIT_SIZE}]")
    row_ptr = np.asarray(row_ptr, dtype=np.int64)
    col_ind = np.asarray(col_ind, dtype=np.int64)
    with telemetry.span(
        "encode.csr_du.unitize",
        policy=policy,
        nrows=row_ptr.size - 1,
        nnz=col_ind.size,
    ):
        return _unitize(row_ptr, col_ind, policy=policy, max_unit=max_unit)


def matrix_deltas(
    row_ptr: np.ndarray, col_ind: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One vectorized pass over the whole matrix: deltas and classes.

    Returns ``(deltas, classes, starts)`` where ``deltas`` holds every
    element's column delta (row-opening deltas measured from column 0),
    ``classes`` its width class, and ``starts`` the element position
    opening each non-empty row.  Both the per-unit reference encoder
    and the batched encoder (:mod:`repro.compress.encode_batched`)
    start from exactly these arrays.
    """
    nnz = col_ind.size
    deltas = np.empty(nnz, dtype=np.int64)
    starts = np.empty(0, dtype=np.int64)
    if nnz:
        # Structural validation of row_ptr itself, shared by BOTH the
        # reference (unitize/CtlWriter) and batched pipelines so they
        # fail identically on adversarial input.  Without it, a bad
        # row_ptr either silently produced a garbage stream (end !=
        # nnz, non-monotone) or tripped an internal invariant in only
        # one of the two encoders (negative / nonzero start).
        if row_ptr.size == 0:
            raise EncodingError("row_ptr is empty but nonzeros are present")
        if int(row_ptr[0]) != 0:
            raise EncodingError(
                f"row_ptr must start at 0, got {int(row_ptr[0])}"
            )
        if int(row_ptr[-1]) != nnz:
            raise EncodingError(
                f"row_ptr ends at {int(row_ptr[-1])} but there are "
                f"{nnz} nonzeros"
            )
        if row_ptr.size > 1 and int(np.diff(row_ptr).min()) < 0:
            raise EncodingError("row_ptr must be non-decreasing")
        deltas[0] = col_ind[0]
        np.subtract(col_ind[1:], col_ind[:-1], out=deltas[1:])
        starts = row_ptr[:-1][np.diff(row_ptr) > 0].astype(np.int64)
        deltas[starts] = col_ind[starts]
        inner = np.ones(nnz, dtype=bool)
        inner[starts] = False
        if np.any(deltas[inner] <= 0):
            raise EncodingError("row columns must be strictly increasing")
        if np.any(deltas[starts] < 0):
            raise EncodingError("negative first column")
    return deltas, width_class_array(deltas), starts


def _unitize(
    row_ptr: np.ndarray,
    col_ind: np.ndarray,
    *,
    policy: str,
    max_unit: int,
) -> list[Unit]:
    deltas_all, classes_all, _ = matrix_deltas(row_ptr, col_ind)
    units: list[Unit] = []
    jump = 1
    for row in range(row_ptr.size - 1):
        start, stop = int(row_ptr[row]), int(row_ptr[row + 1])
        if start == stop:
            jump += 1
            continue
        builder = _UnitBuilder(row, jump)
        if policy == "seq":
            _split_seq(deltas_all[start:stop], max_unit, builder)
        else:
            _split_plain(
                deltas_all[start:stop],
                policy,
                max_unit,
                builder,
                classes=classes_all[start:stop],
            )
        units.extend(builder.units)
        jump = 1
    return units
