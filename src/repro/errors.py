"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while letting programming errors (``TypeError`` from
misuse of NumPy, etc.) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class FormatError(ReproError):
    """A sparse-matrix format was constructed from inconsistent arrays."""


class EncodingError(ReproError):
    """A compression stream (ctl / DCSR commands) is malformed.

    Raised both by encoders asked to encode impossible input (e.g. a
    negative column delta inside a row) and by decoders that run off the
    end of a stream or meet an unknown command byte.
    """


class PartitionError(ReproError):
    """A work partition does not cover the matrix or is malformed."""


class MachineModelError(ReproError):
    """A machine specification or simulation request is invalid."""


class CatalogError(ReproError):
    """A matrix-catalog entry is unknown or cannot be realized."""


class TelemetryError(ReproError):
    """A telemetry event, trace file, or collector operation is invalid."""


class IntegrityError(ReproError):
    """Stored matrix data fails an integrity check.

    Raised by the validators in :mod:`repro.robust.validate` (structural
    invariants, ctl-stream walking, checksum seals) and by aliasing
    contract violations in the compute paths.  Where the failure can be
    localized, the context rides along as attributes.

    Attributes
    ----------
    byte_offset:
        Offset into a byte stream (e.g. ``ctl``) where the check failed,
        or ``None``.
    row:
        Matrix row being walked when the check failed, or ``None``.
    field:
        Name of the stored array that failed (seal mismatches), or
        ``None``.
    """

    def __init__(
        self,
        message: str,
        *,
        byte_offset: int | None = None,
        row: int | None = None,
        field: str | None = None,
    ):
        super().__init__(message)
        self.byte_offset = byte_offset
        self.row = row
        self.field = field


class StorageError(ReproError):
    """A shard store, buffer provider, or manifest operation failed.

    Raised by :mod:`repro.storage` for unsupported formats, malformed
    manifests, missing backing files/segments, and in-memory builds
    that would exceed an enforced ``budget_bytes`` (the out-of-core
    guard: the caller asked for a resident-memory ceiling the build
    cannot honor without spilling to disk).
    """


class ExecutionError(ReproError):
    """One or more worker chunks of a parallel SpMV call failed.

    Aggregates every per-chunk failure of the call (the executor does
    not stop at the first one), so a single except clause sees the full
    damage report.

    Attributes
    ----------
    failures:
        Tuple of :class:`~repro.parallel.executor.ChunkFailure`, one per
        failed chunk, each carrying the thread id, row range and the
        underlying exception.
    """

    def __init__(self, message: str, failures: tuple = ()):
        super().__init__(message)
        self.failures = tuple(failures)


class DeadlineExceeded(ExecutionError):
    """A wall-clock :class:`~repro.resilience.policy.Deadline` ran out.

    Subclasses :class:`ExecutionError` so existing executor callers
    that catch the execution family see the expiry without new except
    clauses; the degradation ladder deliberately does *not* absorb it
    (a spent time budget cannot be bought back by a slower backend).

    Attributes
    ----------
    label:
        Where the budget ran out (``"parallel.call"``,
        ``"stream.shard"``, ...), or ``""``.
    budget_s:
        The total wall-clock budget the deadline started with.
    """

    def __init__(self, message: str, *, label: str = "", budget_s: float = 0.0):
        super().__init__(message)
        self.label = label
        self.budget_s = float(budget_s)


class BreakerOpenError(ReproError):
    """A circuit breaker is open: the guarded operation was not attempted.

    Raised (or aggregated as a :class:`~repro.parallel.executor.
    ChunkFailure` error) when a per-shard or per-backend breaker has
    seen too many consecutive failures and is shedding load instead of
    burning rebuild cycles.  Carries when a retry becomes worthwhile.

    Attributes
    ----------
    key:
        The breaker's identity (e.g. ``"shard:1:g0"`` or
        ``"backend:process:mem"``).
    retry_after_s:
        Seconds until the breaker's cooldown admits a half-open probe.
    """

    def __init__(self, message: str, *, key: str = "", retry_after_s: float = 0.0):
        super().__init__(message)
        self.key = key
        self.retry_after_s = float(retry_after_s)


class ConvergenceError(ReproError):
    """An iterative solver failed to reach its tolerance.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final residual norm achieved.
    """

    def __init__(self, message: str, iterations: int, residual: float):
        super().__init__(message)
        self.iterations = int(iterations)
        self.residual = float(residual)
