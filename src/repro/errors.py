"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while letting programming errors (``TypeError`` from
misuse of NumPy, etc.) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class FormatError(ReproError):
    """A sparse-matrix format was constructed from inconsistent arrays."""


class EncodingError(ReproError):
    """A compression stream (ctl / DCSR commands) is malformed.

    Raised both by encoders asked to encode impossible input (e.g. a
    negative column delta inside a row) and by decoders that run off the
    end of a stream or meet an unknown command byte.
    """


class PartitionError(ReproError):
    """A work partition does not cover the matrix or is malformed."""


class MachineModelError(ReproError):
    """A machine specification or simulation request is invalid."""


class CatalogError(ReproError):
    """A matrix-catalog entry is unknown or cannot be realized."""


class TelemetryError(ReproError):
    """A telemetry event, trace file, or collector operation is invalid."""


class ConvergenceError(ReproError):
    """An iterative solver failed to reach its tolerance.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final residual norm achieved.
    """

    def __init__(self, message: str, iterations: int, residual: float):
        super().__init__(message)
        self.iterations = int(iterations)
        self.residual = float(residual)
