"""repro -- reproduction of Kourtis, Goumas & Koziris (ICPP 2008):
"Improving the Performance of Multithreaded Sparse Matrix-Vector
Multiplication Using Index and Value Compression".

Public API quick tour::

    from repro import CSRMatrix, CSRDUMatrix, CSRVIMatrix, convert

    A = CSRMatrix.from_dense(dense)          # or matrices.generators / catalog
    A_du = convert(A, "csr-du")              # index compression
    A_vi = convert(A, "csr-vi")              # value compression
    y = A_du @ x                             # SpMV

    from repro.machine import clovertown_8core, simulate_spmv
    t = simulate_spmv(A_du, threads=8, machine=clovertown_8core())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.errors import (
    CatalogError,
    ConvergenceError,
    EncodingError,
    FormatError,
    MachineModelError,
    PartitionError,
    ReproError,
)
from repro.io import load_matrix, save_matrix
from repro.formats import (
    BCSRMatrix,
    COOMatrix,
    CSCMatrix,
    CSRDUMatrix,
    CSRDUVIMatrix,
    CSRMatrix,
    CSRVIMatrix,
    DCSRMatrix,
    ELLMatrix,
    JDSMatrix,
    SparseMatrix,
    Storage,
    available_formats,
    convert,
    to_csr,
    working_set_bytes,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "FormatError",
    "EncodingError",
    "PartitionError",
    "MachineModelError",
    "CatalogError",
    "ConvergenceError",
    "SparseMatrix",
    "Storage",
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "CSRDUMatrix",
    "CSRVIMatrix",
    "CSRDUVIMatrix",
    "DCSRMatrix",
    "BCSRMatrix",
    "ELLMatrix",
    "JDSMatrix",
    "available_formats",
    "save_matrix",
    "load_matrix",
    "convert",
    "to_csr",
    "working_set_bytes",
    "__version__",
]
