"""Work partitioning for multithreaded SpMV (Section II-C of the paper).

Three schemes, as the paper describes:

* **Row partitioning** (the paper's choice, Fig. 2): each thread gets a
  contiguous block of rows.  Threads write disjoint parts of ``y`` and
  share read-only ``x``.
* **Column partitioning**: each thread gets a block of columns, works
  on a private copy of ``y`` (to avoid cache-line ping-pong), and the
  copies are reduced at the end.
* **Block partitioning**: a 2-D grid combining both.

Balancing follows the paper's *static nnz-based scheme*: boundaries are
chosen so every thread receives approximately the same number of
nonzero elements, hence the same floating-point work.  For offsets
array ``ptr`` (row_ptr or col_ptr), :func:`balance_by_nnz` picks the
boundary before which at most ``k * nnz / nthreads`` elements lie --
a binary search per boundary, ``O(nthreads * log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.telemetry import core as telemetry
from repro.telemetry.metrics import record_partition


def balance_by_nnz(ptr: np.ndarray, nparts: int) -> np.ndarray:
    """Boundaries splitting ``len(ptr) - 1`` segments into *nparts* groups
    of approximately equal total element count.

    Returns an array of ``nparts + 1`` segment indices starting at 0 and
    ending at ``len(ptr) - 1``, non-decreasing.  Groups may be empty when
    there are more parts than segments or the distribution is extreme.
    """
    ptr = np.asarray(ptr, dtype=np.int64)
    if nparts < 1:
        raise PartitionError(f"nparts must be >= 1, got {nparts}")
    if ptr.ndim != 1 or ptr.size < 1:
        raise PartitionError("ptr must be a 1-D offsets array")
    nseg = ptr.size - 1
    total = int(ptr[-1])
    targets = (np.arange(1, nparts) * total) / nparts
    # Boundary k goes where the cumulative count first reaches target k.
    inner = np.searchsorted(ptr[1:], targets, side="left") + 1
    inner = np.minimum(inner, nseg)
    bounds = np.concatenate(([0], inner, [nseg])).astype(np.int64)
    return np.maximum.accumulate(bounds)


@dataclass(frozen=True)
class RowPartition:
    """Assignment of contiguous row blocks to threads.

    ``boundaries`` has ``nthreads + 1`` entries; thread ``t`` owns rows
    ``[boundaries[t], boundaries[t+1])``.
    """

    boundaries: np.ndarray
    nnz_per_thread: np.ndarray

    @property
    def nthreads(self) -> int:
        return self.boundaries.size - 1

    def rows_of(self, thread: int) -> tuple[int, int]:
        return int(self.boundaries[thread]), int(self.boundaries[thread + 1])

    def imbalance(self) -> float:
        """max/mean nonzeros per thread (1.0 is perfect balance)."""
        mean = self.nnz_per_thread.mean()
        return float(self.nnz_per_thread.max() / mean) if mean > 0 else 1.0


@dataclass(frozen=True)
class ColumnPartition:
    """Assignment of contiguous column blocks to threads."""

    boundaries: np.ndarray
    nnz_per_thread: np.ndarray

    @property
    def nthreads(self) -> int:
        return self.boundaries.size - 1

    def cols_of(self, thread: int) -> tuple[int, int]:
        return int(self.boundaries[thread]), int(self.boundaries[thread + 1])

    def imbalance(self) -> float:
        mean = self.nnz_per_thread.mean()
        return float(self.nnz_per_thread.max() / mean) if mean > 0 else 1.0


@dataclass(frozen=True)
class BlockPartition:
    """2-D grid of (row-block, column-block) tiles assigned round-robin.

    ``row_bounds`` x ``col_bounds`` defines the grid; tile ``(i, j)``
    belongs to thread ``(i * ncol_blocks + j) % nthreads``.
    """

    row_bounds: np.ndarray
    col_bounds: np.ndarray
    nthreads: int

    def tiles_of(self, thread: int) -> list[tuple[tuple[int, int], tuple[int, int]]]:
        ncb = self.col_bounds.size - 1
        tiles = []
        for i in range(self.row_bounds.size - 1):
            for j in range(ncb):
                if (i * ncb + j) % self.nthreads == thread:
                    tiles.append(
                        (
                            (int(self.row_bounds[i]), int(self.row_bounds[i + 1])),
                            (int(self.col_bounds[j]), int(self.col_bounds[j + 1])),
                        )
                    )
        return tiles


def row_partition(row_ptr: np.ndarray, nthreads: int) -> RowPartition:
    """The paper's scheme: contiguous rows, nnz-balanced."""
    bounds = balance_by_nnz(row_ptr, nthreads)
    ptr = np.asarray(row_ptr, dtype=np.int64)
    nnz_per = ptr[bounds[1:]] - ptr[bounds[:-1]]
    if telemetry.enabled():
        record_partition(bounds.tolist(), nnz_per.tolist(), kind="row")
    return RowPartition(boundaries=bounds, nnz_per_thread=nnz_per)


def column_partition(col_ptr: np.ndarray, nthreads: int) -> ColumnPartition:
    """Contiguous columns, nnz-balanced (for CSC / column scheme)."""
    bounds = balance_by_nnz(col_ptr, nthreads)
    ptr = np.asarray(col_ptr, dtype=np.int64)
    nnz_per = ptr[bounds[1:]] - ptr[bounds[:-1]]
    if telemetry.enabled():
        record_partition(bounds.tolist(), nnz_per.tolist(), kind="column")
    return ColumnPartition(boundaries=bounds, nnz_per_thread=nnz_per)


def block_partition(
    row_ptr: np.ndarray, ncols: int, nthreads: int, *, grid: tuple[int, int] | None = None
) -> BlockPartition:
    """2-D tiling; default grid is ``nthreads x nthreads`` tiles.

    Row cuts are nnz-balanced; column cuts are uniform (per-tile nnz
    would need a full column histogram -- uniform is what the paper's
    "configurable data sizes" remark needs for e.g. Cell-style local
    stores).
    """
    if nthreads < 1:
        raise PartitionError(f"nthreads must be >= 1, got {nthreads}")
    nrb, ncb = grid if grid is not None else (nthreads, nthreads)
    if nrb < 1 or ncb < 1:
        raise PartitionError(f"grid {grid} must be positive")
    row_bounds = balance_by_nnz(row_ptr, nrb)
    col_bounds = np.linspace(0, ncols, ncb + 1).round().astype(np.int64)
    return BlockPartition(row_bounds=row_bounds, col_bounds=col_bounds, nthreads=nthreads)
