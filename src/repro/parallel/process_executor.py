"""Multi-process SpMV execution: real parallelism beyond the GIL.

:class:`ProcessParallelSpMV` is the process-pool sibling of
:class:`~repro.parallel.executor.ParallelSpMV`.  The matrix is sharded
once into a :class:`~repro.storage.shard.ShardStore` (one shard per
worker, same nnz-balanced row partition as the thread executor), and
each call ships nothing but a picklable shard *spec*: workers attach
the shard bytes directly -- a POSIX shared-memory segment for
``storage="mem"``, a re-opened ``np.memmap`` for ``storage="mmap"`` --
multiply into a shared output buffer, and return a small status dict.
No matrix data ever crosses the pickle channel.

The fault contract matches the thread executor exactly, crossing the
process boundary:

* every chunk outcome is collected; failures aggregate into one
  :class:`~repro.errors.ExecutionError` with per-chunk context;
* decode-class failures (:data:`~repro.parallel.executor.RETRYABLE`,
  which includes the CRC mismatch a poisoned shard raises at attach)
  get one retry after the parent rebuilds the shard from the source
  matrix -- ``rebuild_shard`` bumps the shard's generation, so the
  worker's attach cache cannot serve the stale bytes;
* ``chunk_timeout`` bounds the wait per chunk, and a worker that dies
  outright (``BrokenProcessPool``) surfaces as an aggregated failure,
  not a hang -- the pool and the shared x/y buffers are rotated before
  the next call so a straggler writing late cannot corrupt it.

Exceptions cross back as ``(type name, message)`` pairs -- errors with
keyword-only constructors (:class:`~repro.errors.IntegrityError`) do
not round-trip through pickle reliably -- and are reconstructed from
:mod:`repro.errors` / builtins in the parent, falling back to
:class:`RuntimeError`.
"""

from __future__ import annotations

import builtins
import multiprocessing
import os
import time
import traceback
import uuid
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context, shared_memory

import numpy as np

import repro.errors as _errors
from repro.compress.encode_cache import ConvertCache
from repro.errors import (
    BreakerOpenError,
    ExecutionError,
    FormatError,
    PartitionError,
    StorageError,
)
from repro.formats.base import SparseMatrix, check_out_aliasing
from repro.formats.conversions import to_csr
from repro.obs import core as obs
from repro.obs import xproc
from repro.parallel.executor import RETRYABLE, ChunkFailure, abandon_chunk
from repro.parallel.partition import RowPartition, row_partition
from repro.resilience import chaos
from repro.resilience.breaker import BreakerBoard
from repro.resilience.policy import DEFAULT_RETRY_POLICY, Deadline, RetryPolicy
from repro.storage.provider import _attach_shm, _disarm_segment
from repro.storage.shard import ShardStore, attach_shard
from repro.telemetry import core as telemetry

__all__ = ["ProcessParallelSpMV"]

#: storage= values accepted by the process backend and the store kind
#: each maps to ("mem" means shared memory here: the in-RAM case that
#: workers can still reach).
_STORAGE_KINDS = {"mem": "shm", "shm": "shm", "mmap": "mmap"}


# ---------------------------------------------------------------------------
# Worker side (module level: must be picklable by reference)
# ---------------------------------------------------------------------------

#: Per-worker LRU cache of rebuilt shard matrices, keyed (index,
#: generation).  A rebuilt shard arrives with a bumped generation, so
#: stale bytes are never served after a cache-invalidating retry.  Hits
#: move to the back; over capacity the oldest entry is evicted -- the
#: working set survives, unlike the previous wholesale clear().
_SHARD_CACHE: "OrderedDict[tuple[int, int], SparseMatrix]" = OrderedDict()

#: Shard-cache capacity per worker process.
_SHARD_CACHE_CAPACITY = 64

#: Per-worker cache of attached x/y vector segments, keyed by name.
_VEC_CACHE: dict[str, np.ndarray] = {}


def _attach_vector(name: str, size: int) -> np.ndarray:
    vec = _VEC_CACHE.get(name)
    if vec is None:
        seg = _attach_shm(name)
        vec = np.frombuffer(seg.buf, dtype=np.float64, count=size)
        if len(_VEC_CACHE) > 8:
            _VEC_CACHE.clear()
        _VEC_CACHE[name] = vec
    return vec


def _cached_shard(spec: dict) -> SparseMatrix:
    """Shard for *spec* from the worker's LRU cache, attaching on miss.

    attach_shard verifies every field CRC: a poisoned shard raises
    IntegrityError here, which the parent sees as retryable.  The
    hit/miss marks flow through whatever telemetry/obs sinks are
    installed in this process -- the worker-scoped ones when a trace
    context enabled them, or the disabled fast path otherwise.
    """
    key = (spec["index"], spec["generation"])
    shard = _SHARD_CACHE.get(key)
    storage = spec["handle"]["kind"]
    if shard is not None:
        _SHARD_CACHE.move_to_end(key)
        telemetry.count(
            "storage.shard.cache.hit",
            1,
            extra={"index": spec["index"]},
            storage=storage,
        )
        obs.mark("storage.shard.cache.hit", 1, storage=storage)
        return shard
    # The miss is recorded before the attach so a failing attach still
    # counts as a miss.
    telemetry.count(
        "storage.shard.cache.miss",
        1,
        extra={"index": spec["index"]},
        storage=storage,
    )
    obs.mark("storage.shard.cache.miss", 1, storage=storage)
    shard = attach_shard(spec, verify=True)
    _SHARD_CACHE[key] = shard
    while len(_SHARD_CACHE) > _SHARD_CACHE_CAPACITY:
        _SHARD_CACHE.popitem(last=False)
    return shard


def _worker_spmv(
    spec: dict,
    x_name: str,
    ncols: int,
    y_name: str,
    nrows: int,
    lo: int,
    hi: int,
) -> dict:
    """Multiply one shard inside a pool worker; returns a status dict.

    The return value is deliberately plain (no exception objects):
    errors with keyword-only constructors break pickle, and the parent
    owns the retry decision anyway.  Failures carry the formatted
    worker traceback -- exception objects cannot cross the boundary,
    but the text can.

    When the spec carries a trace context (the parent had telemetry or
    obs enabled), the chunk runs under worker-scoped sinks and the
    status dict ships everything recorded -- spans, counters, metric
    shards -- back for the parent to merge (:mod:`repro.obs.xproc`).
    Without a context nothing here touches a collector or runtime.
    """
    t0 = time.perf_counter()
    ctx = spec.get("ctx")
    wt: xproc.WorkerTelemetry | None = None
    try:
        if ctx is not None:
            wt = xproc.WorkerTelemetry(ctx)
            wt.begin()
        try:
            with telemetry.span(
                "parallel.chunk",
                thread=wt.ctx.worker if wt else 0,
                lo=lo,
                hi=hi,
                nnz=wt.ctx.attrs.get("nnz", 0) if wt else 0,
                kind="row",
                backend="process",
                pid=os.getpid(),
                run_id=wt.ctx.run_id if wt else "",
            ):
                # Chaos seam (tools/smoke_chaos.py): faults armed in the
                # parent before the pool forked fire here -- a SIGKILL
                # lands mid-chunk, a sleep makes this worker the
                # straggler.  Empty registry = one truthiness check.
                chaos.trip(
                    "worker.chunk",
                    index=spec["index"],
                    generation=spec["generation"],
                    pid=os.getpid(),
                )
                x = _attach_vector(x_name, ncols)
                y = _attach_vector(y_name, nrows)
                with telemetry.span(
                    "worker.attach",
                    index=spec["index"],
                    generation=spec["generation"],
                ):
                    shard = _cached_shard(spec)
                with telemetry.span("worker.multiply", index=spec["index"]):
                    shard.spmv(x, out=y[lo:hi])
            seconds = time.perf_counter() - t0
            if wt is not None and wt.runtime is not None:
                wt.runtime.observe(
                    "spmv.chunk.seconds",
                    seconds,
                    format=wt.ctx.attrs.get("format", ""),
                    backend="process",
                )
            status = {"ok": True, "seconds": seconds}
        finally:
            if wt is not None:
                wt.end()
    except BaseException as exc:  # noqa: BLE001 - must not escape the worker
        status = {
            "ok": False,
            "seconds": time.perf_counter() - t0,
            "error_type": type(exc).__name__,
            "error": str(exc),
            "retryable": isinstance(exc, RETRYABLE),
            "traceback": traceback.format_exc(),
        }
    if wt is not None and wt.began:
        status["xproc"] = wt.payload()
    return status


def _rebuild_error(status: dict) -> BaseException:
    """Parent-side reconstruction of a worker's reported exception."""
    name = status.get("error_type", "RuntimeError")
    message = status.get("error", "")
    cls = getattr(_errors, name, None) or getattr(builtins, name, None)
    if not (isinstance(cls, type) and issubclass(cls, BaseException)):
        return RuntimeError(f"{name}: {message}")
    try:
        return cls(message)
    except TypeError:
        return RuntimeError(f"{name}: {message}")


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _SharedVector:
    """A float64 vector in a shared-memory segment (parent-owned)."""

    def __init__(self, size: int):
        self.size = size
        self._seg = shared_memory.SharedMemory(
            create=True, size=max(size * 8, 1)
        )
        self.array = np.frombuffer(self._seg.buf, dtype=np.float64, count=size)

    @property
    def name(self) -> str:
        return self._seg.name

    def close(self) -> None:
        try:
            self._seg.unlink()
        except FileNotFoundError:
            pass
        # Release our view first or close() raises BufferError.
        self.array = None
        try:
            self._seg.close()
        except BufferError:
            _disarm_segment(self._seg)


class ProcessParallelSpMV:
    """Row-partitioned multi-process SpMV over sharded storage.

    Parameters
    ----------
    matrix:
        Source matrix (any format; normalized through CSR once).
    nworkers:
        Process count; one shard / output slice per worker.
    format_name, format_kwargs:
        Storage format of the shards, as in the thread executor.
    storage:
        ``"mem"`` -- shards live in POSIX shared memory (in-RAM case);
        ``"mmap"`` -- shards live in packed files under *directory*
        and workers re-open the memmap (out-of-core case).
    directory:
        Shard-file directory, required for ``storage="mmap"``.
    convert_cache:
        Cache for the shard encodes (shared with thread executors over
        the same matrix: the keying is identical).
    chunk_timeout:
        Seconds to wait per chunk and call; a chunk exceeding it is a
        :class:`TimeoutError` failure inside the aggregated
        :class:`~repro.errors.ExecutionError`, and the shared buffers
        are rotated so the straggler cannot corrupt the next call.
    mp_context:
        Multiprocessing start method (default ``"fork"`` where
        available, else the platform default): fork makes worker
        startup cheap and is safe here because workers only attach
        buffers and run NumPy kernels.
    retry_policy:
        :class:`~repro.resilience.policy.RetryPolicy` governing the
        rebuild-and-resubmit retry (default: one retry of decode-class
        failures, shared budget across the run).
    deadline:
        Optional :class:`~repro.resilience.policy.Deadline` capping
        every per-chunk wait at the run's remaining wall-clock budget.
    breaker_threshold, breaker_cooldown_s:
        Per-(shard, generation) circuit-breaker configuration: after
        *breaker_threshold* consecutive failures against one shard
        generation, further rebuild attempts are refused (a typed
        :class:`~repro.errors.BreakerOpenError` failure) until the
        cooldown admits a half-open probe.  A successful rebuild bumps
        the generation and therefore starts a fresh breaker.
    """

    backend = "process"

    def __init__(
        self,
        matrix: SparseMatrix,
        nworkers: int,
        *,
        format_name: str = "csr",
        storage: str = "mem",
        directory: str | None = None,
        convert_cache: ConvertCache | None = None,
        chunk_timeout: float | None = None,
        mp_context: str | None = None,
        retry_policy: RetryPolicy | None = None,
        deadline: Deadline | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 5.0,
        **format_kwargs,
    ):
        if nworkers < 1:
            raise PartitionError(f"nworkers must be >= 1, got {nworkers}")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise PartitionError(
                f"chunk_timeout must be positive, got {chunk_timeout}"
            )
        if storage not in _STORAGE_KINDS:
            raise StorageError(
                f"unknown storage {storage!r} for the process backend; "
                f"choose from {sorted(_STORAGE_KINDS)}"
            )
        csr = to_csr(matrix)
        self.nrows, self.ncols = csr.shape
        self.nworkers = nworkers
        self.nthreads = nworkers  # parity with ParallelSpMV's attribute
        self.chunk_timeout = chunk_timeout
        self.retry_policy = (
            DEFAULT_RETRY_POLICY if retry_policy is None else retry_policy
        )
        self.deadline = deadline
        self._retry_budget = self.retry_policy.new_budget()
        self.breakers = BreakerBoard(
            failure_threshold=breaker_threshold,
            cooldown_s=breaker_cooldown_s,
        )
        self._format_name = format_name
        self.partition: RowPartition = row_partition(csr.row_ptr, nworkers)
        self.store = ShardStore.build(
            csr,
            format_name,
            nworkers,
            storage=_STORAGE_KINDS[storage],
            directory=directory,
            convert_cache=convert_cache,
            boundaries=self.partition.boundaries.tolist(),
            deadline=deadline,
            **format_kwargs,
        )
        if mp_context is None and "fork" in multiprocessing.get_all_start_methods():
            mp_context = "fork"
        self._ctx = get_context(mp_context) if mp_context else get_context()
        self._pool: ProcessPoolExecutor | None = None
        self._run_id = uuid.uuid4().hex[:12]
        self._x = _SharedVector(self.ncols)
        self._y = _SharedVector(self.nrows)
        self._retired: list[_SharedVector] = []
        self._closed = False

    # -- pool / buffer lifecycle ------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.nworkers, mp_context=self._ctx
            )
        return self._pool

    def _rotate(self) -> None:
        """Replace pool and shared buffers after a timeout / dead worker.

        A timed-out worker may still be running and would eventually
        write into the old ``y`` segment; retiring the segments (they
        stay allocated until close) guarantees it cannot touch the
        buffers later calls read.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._retired.extend([self._x, self._y])
        self._x = _SharedVector(self.ncols)
        self._y = _SharedVector(self.nrows)

    # -- the call ----------------------------------------------------------
    def _submit(self, pool: ProcessPoolExecutor, t: int):
        lo, hi = self.partition.rows_of(t)
        # The spec dict is shared with the store's manifest, so the
        # trace context rides on a copy.  ctx is None when both
        # telemetry and obs are off -- the worker then makes zero
        # observability calls (the xproc zero-overhead contract).
        spec = dict(self.store.attach_spec(t))
        ctx = xproc.current_context(
            run_id=self._run_id,
            parent="parallel.spmv",
            worker=t,
            nnz=int(self.partition.nnz_per_thread[t]),
            format=self._format_name,
        )
        if ctx is not None:
            spec["ctx"] = ctx
        return pool.submit(
            _worker_spmv,
            spec,
            self._x.name,
            self.ncols,
            self._y.name,
            self.nrows,
            lo,
            hi,
        )

    def _chunk_result(self, t: int, future, *, retried: bool):
        """(failure | None, status | None, needs_rotation) for one chunk."""
        lo, hi = self.partition.rows_of(t)
        timeout = (
            self.chunk_timeout
            if self.deadline is None
            else self.deadline.cap(self.chunk_timeout)
        )
        try:
            status = future.result(timeout=timeout)
        except FuturesTimeoutError:
            failure = abandon_chunk(
                t,
                lo,
                hi,
                timeout=timeout,
                kind="row",
                backend=self.backend,
            )
            if retried:
                failure = ChunkFailure(
                    t, lo, hi, failure.error, retried=True
                )
            return failure, None, True
        except BrokenProcessPool as exc:
            return (
                ChunkFailure(
                    t,
                    lo,
                    hi,
                    RuntimeError(f"worker process died: {exc}"),
                    retried=retried,
                ),
                None,
                True,
            )
        # Worker-side telemetry/metrics merge first (also for failed
        # chunks: their partial events show where worker time went).
        payload = status.get("xproc")
        if payload is not None:
            xproc.ingest_payload(payload)
        if status["ok"]:
            runtime = obs.get_runtime()
            # The worker already observed its chunk latency when its
            # context had obs on (shipped in the payload's shards);
            # observing here too would double-count, so the parent
            # records only for workers that ran without an obs scope.
            if runtime is not None and (
                payload is None or "shards" not in payload
            ):
                runtime.observe(
                    "spmv.chunk.seconds",
                    status["seconds"],
                    format=self._format_name,
                    backend=self.backend,
                )
            telemetry.count(
                "parallel.chunk",
                1,
                extra={
                    "thread": t,
                    "lo": lo,
                    "hi": hi,
                    "nnz": int(self.partition.nnz_per_thread[t]),
                    "kind": "row",
                    "backend": self.backend,
                    "seconds": status["seconds"],
                },
            )
            return None, status, False
        return None, status, False

    def __call__(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Compute ``y = A x`` across the worker processes."""
        if self._closed:
            raise StorageError("executor is closed")
        if self.deadline is not None:
            self.deadline.check("parallel.call")
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise FormatError(f"x has shape {x.shape}, expected ({self.ncols},)")
        if out is not None:
            check_out_aliasing(out, x)
        np.copyto(self._x.array, x)

        failures: list[ChunkFailure] = []
        needs_rotation = False
        runtime = obs.get_runtime()
        call_t0 = time.perf_counter()
        with telemetry.span(
            "parallel.spmv", threads=self.nworkers, backend=self.backend
        ):
            pool = self._ensure_pool()
            futures = {t: self._submit(pool, t) for t in range(self.nworkers)}
            retry: list[tuple[int, dict]] = []
            for t, future in futures.items():
                failure, status, rotate = self._chunk_result(
                    t, future, retried=False
                )
                needs_rotation |= rotate
                if failure is not None:
                    failures.append(failure)
                elif status is not None and not status["ok"]:
                    retry.append((t, status))
            # Cache-invalidating retry, across the process boundary: the
            # parent rebuilds the shard (new generation, fresh bytes)
            # and resubmits -- gated by the retry policy (error class,
            # attempts, shared budget, deadline) and by the shard
            # generation's circuit breaker, so a shard that keeps
            # failing at the same bytes stops burning rebuild cycles.
            resubmitted: list[tuple[int, object, object]] = []
            for t, status in retry:
                lo, hi = self.partition.rows_of(t)
                exc = _rebuild_error(status)
                generation = self.store.attach_spec(t)["generation"]
                breaker = self.breakers.get(f"shard:{t}:g{generation}")
                breaker.record_failure()
                if not breaker.allow():
                    failures.append(
                        ChunkFailure(
                            t,
                            lo,
                            hi,
                            BreakerOpenError(
                                f"shard {t} generation {generation} breaker "
                                f"open after repeated failures (last: "
                                f"{type(exc).__name__}: {exc})",
                                key=breaker.key,
                                retry_after_s=breaker.retry_after_s(),
                            ),
                            retried=False,
                            worker_traceback=status.get("traceback"),
                        )
                    )
                    continue
                if not self.retry_policy.should_retry(
                    exc, 1, budget=self._retry_budget, deadline=self.deadline
                ):
                    failures.append(
                        ChunkFailure(
                            t,
                            lo,
                            hi,
                            exc,
                            retried=False,
                            worker_traceback=status.get("traceback"),
                        )
                    )
                    continue
                telemetry.count(
                    "executor.retry",
                    1,
                    extra={
                        "thread": t,
                        "lo": lo,
                        "hi": hi,
                        "error": status.get("error_type", ""),
                    },
                    format=self._format_name,
                )
                obs.mark("executor.retry", 1, format=self._format_name)
                try:
                    self.store.rebuild_shard(t)
                except Exception as exc2:
                    breaker.record_failure()
                    failures.append(ChunkFailure(t, lo, hi, exc2, retried=True))
                    continue
                resubmitted.append((t, self._submit(pool, t), breaker))
            for t, future, breaker in resubmitted:
                lo, hi = self.partition.rows_of(t)
                failure, status, rotate = self._chunk_result(
                    t, future, retried=True
                )
                needs_rotation |= rotate
                if failure is not None:
                    breaker.record_failure()
                    failures.append(failure)
                elif status is not None and not status["ok"]:
                    breaker.record_failure()
                    failures.append(
                        ChunkFailure(
                            t,
                            lo,
                            hi,
                            _rebuild_error(status),
                            retried=True,
                            worker_traceback=status.get("traceback"),
                        )
                    )
                else:
                    # The rebuilt generation works: close the breaker so
                    # a half-open probe that succeeded re-admits traffic.
                    breaker.record_success()
        y_view = self._y.array
        if out is not None:
            np.copyto(out, y_view)
            y = out
        else:
            y = np.array(y_view, copy=True)
        if needs_rotation:
            self._rotate()
        if runtime is not None:
            runtime.observe(
                "spmv.call.seconds",
                time.perf_counter() - call_t0,
                format=self._format_name,
                threads=self.nworkers,
                backend=self.backend,
            )
        if failures:
            failures.sort(key=lambda f: f.thread)
            detail = "; ".join(f.describe() for f in failures)
            raise ExecutionError(
                f"{len(failures)} of {self.nworkers} chunks failed: {detail}",
                failures=tuple(failures),
            )
        return y

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Shut down the pool, the shard store, and the shared buffers."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        for vec in [self._x, self._y, *self._retired]:
            vec.close()
        self._retired = []
        self.store.close()

    def __enter__(self) -> "ProcessParallelSpMV":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
