"""Backend factory: one entry point over the thread / process executors.

The harness, CLI, and benchmarks select execution with two orthogonal
axes -- ``backend`` (where the workers run) and ``storage`` (where the
encoded shards live) -- and this module maps each combination to the
right executor class:

========  =========  ====================================================
backend   storage    meaning
========  =========  ====================================================
thread    mem        :class:`~repro.parallel.executor.ParallelSpMV`,
                     chunks as cached in-process encodes (the default)
thread    mmap       same executor, chunks attached from packed memmap
                     shard files (out-of-core under the GIL)
process   mem        :class:`~repro.parallel.process_executor.
                     ProcessParallelSpMV`, shards in POSIX shared memory
process   mmap       same executor, workers re-open the memmap shards
                     (out-of-core *and* GIL-free)
========  =========  ====================================================

Both classes share the calling convention (``executor(x, out=)``),
the fault contract (:class:`~repro.errors.ExecutionError` aggregation,
cache-invalidating retry, ``chunk_timeout``), and ``close()`` /
context-manager lifetime, so callers treat the return value uniformly.
They also share the observability contract: with telemetry or obs
enabled, both emit ``parallel.chunk`` spans and ``spmv.chunk.seconds``
histograms -- the process executor records them *inside* its workers
and merges them back via :mod:`repro.obs.xproc`, so traces and metrics
look the same whichever backend ran.
"""

from __future__ import annotations

from repro.errors import PartitionError
from repro.parallel.executor import ParallelSpMV
from repro.parallel.process_executor import ProcessParallelSpMV

__all__ = ["BACKENDS", "STORAGES", "make_executor"]

BACKENDS = ("thread", "process")
STORAGES = ("mem", "mmap")


def make_executor(
    matrix,
    nworkers: int,
    *,
    backend: str = "thread",
    storage: str = "mem",
    format_name: str = "csr",
    directory: str | None = None,
    convert_cache=None,
    chunk_timeout: float | None = None,
    **format_kwargs,
):
    """Build the executor for (*backend*, *storage*); see the table above.

    ``directory`` is required when ``storage="mmap"`` (where the shard
    files go); it is ignored for ``storage="mem"``.
    """
    if backend not in BACKENDS:
        raise PartitionError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    if storage not in STORAGES:
        raise PartitionError(
            f"unknown storage {storage!r}; choose from {STORAGES}"
        )
    if backend == "thread":
        return ParallelSpMV(
            matrix,
            nworkers,
            format_name=format_name,
            convert_cache=convert_cache,
            chunk_timeout=chunk_timeout,
            storage=storage,
            directory=directory,
            **format_kwargs,
        )
    return ProcessParallelSpMV(
        matrix,
        nworkers,
        format_name=format_name,
        storage=storage,
        directory=directory,
        convert_cache=convert_cache,
        chunk_timeout=chunk_timeout,
        **format_kwargs,
    )
