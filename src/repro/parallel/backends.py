"""Backend factory: one entry point over the thread / process executors.

The harness, CLI, and benchmarks select execution with two orthogonal
axes -- ``backend`` (where the workers run) and ``storage`` (where the
encoded shards live) -- and this module maps each combination to the
right executor class:

========  =========  ====================================================
backend   storage    meaning
========  =========  ====================================================
thread    mem        :class:`~repro.parallel.executor.ParallelSpMV`,
                     chunks as cached in-process encodes (the default)
thread    mmap       same executor, chunks attached from packed memmap
                     shard files (out-of-core under the GIL)
process   mem        :class:`~repro.parallel.process_executor.
                     ProcessParallelSpMV`, shards in POSIX shared memory
process   mmap       same executor, workers re-open the memmap shards
                     (out-of-core *and* GIL-free)
========  =========  ====================================================

Both classes share the calling convention (``executor(x, out=)``),
the fault contract (:class:`~repro.errors.ExecutionError` aggregation,
cache-invalidating retry, ``chunk_timeout``), and ``close()`` /
context-manager lifetime, so callers treat the return value uniformly.

``nworkers`` may be omitted (or given as ``"auto"``): the default is
the host's logical CPU count -- requesting more workers than cores
only adds dispatch overhead, so defaults are capped there; an
*explicit* integer is always honored (oversubscription stays testable).
``format_name="auto"`` asks the configuration advisor
(:mod:`repro.perf.advisor`) to pick the compression format for this
matrix; the resolved executor is bit-identical to one built with the
same format spelled explicitly.
They also share the observability contract: with telemetry or obs
enabled, both emit ``parallel.chunk`` spans and ``spmv.chunk.seconds``
histograms -- the process executor records them *inside* its workers
and merges them back via :mod:`repro.obs.xproc`, so traces and metrics
look the same whichever backend ran.
"""

from __future__ import annotations

import os

from repro.errors import PartitionError
from repro.parallel.executor import ParallelSpMV
from repro.parallel.process_executor import ProcessParallelSpMV

__all__ = ["BACKENDS", "STORAGES", "default_workers", "make_executor"]

BACKENDS = ("thread", "process")
STORAGES = ("mem", "mmap")


def default_workers(nworkers=None) -> int:
    """Resolve a worker-count request; defaults cap at the CPU count.

    ``None`` and ``"auto"`` become ``os.cpu_count()`` (at least 1) --
    on the single-CPU benchmark container that is 1, which is also
    what the advisor's GIL/IPC-aware prediction resolves to.  An
    explicit integer passes through untouched so oversubscription
    remains expressible (tests exercise 4 workers on 1 CPU on
    purpose).
    """
    if nworkers is None or nworkers == "auto":
        return max(1, os.cpu_count() or 1)
    return int(nworkers)


def make_executor(
    matrix,
    nworkers=None,
    *,
    backend: str = "thread",
    storage: str = "mem",
    format_name: str = "csr",
    directory: str | None = None,
    convert_cache=None,
    chunk_timeout: float | None = None,
    retry_policy=None,
    deadline=None,
    degrade: bool = False,
    breaker_threshold: int = 3,
    breaker_cooldown_s: float = 5.0,
    **format_kwargs,
):
    """Build the executor for (*backend*, *storage*); see the table above.

    ``directory`` is required when ``storage="mmap"`` (where the shard
    files go); it is ignored for ``storage="mem"``.  ``nworkers``
    defaults to the host CPU count (see :func:`default_workers`);
    ``format_name="auto"`` resolves through the advisor.

    Resilience knobs (PR 10): ``retry_policy`` (a
    :class:`~repro.resilience.policy.RetryPolicy`; default one
    decode-class retry) and ``deadline`` (a
    :class:`~repro.resilience.policy.Deadline` whose remaining budget
    caps every per-chunk wait) flow into whichever executor is built.
    ``degrade=True`` wraps the configuration in a
    :class:`~repro.resilience.degrade.ResilientExecutor`: the requested
    (backend, storage) becomes the top rung of an explicit fallback
    ladder down to serial in-memory execution, with per-rung circuit
    breakers configured by ``breaker_threshold`` /
    ``breaker_cooldown_s`` (the process backend also uses those values
    for its per-shard-generation breakers).
    """
    if backend not in BACKENDS:
        raise PartitionError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    if storage not in STORAGES:
        raise PartitionError(
            f"unknown storage {storage!r}; choose from {STORAGES}"
        )
    nworkers = default_workers(nworkers)
    if format_name == "auto":
        # Imported lazily: the advisor sits above the format/kernel
        # layers this package belongs to.
        from repro.perf.advisor import advise_format

        format_name = advise_format(
            matrix, threads=nworkers, backend=backend
        )
    if degrade:
        # Imported lazily: degrade.py calls back into make_executor to
        # build each rung (with degrade off).
        from repro.resilience.degrade import ResilientExecutor

        return ResilientExecutor(
            matrix,
            nworkers,
            backend=backend,
            storage=storage,
            format_name=format_name,
            directory=directory,
            convert_cache=convert_cache,
            chunk_timeout=chunk_timeout,
            retry_policy=retry_policy,
            deadline=deadline,
            breaker_threshold=breaker_threshold,
            breaker_cooldown_s=breaker_cooldown_s,
            **format_kwargs,
        )
    if backend == "thread":
        return ParallelSpMV(
            matrix,
            nworkers,
            format_name=format_name,
            convert_cache=convert_cache,
            chunk_timeout=chunk_timeout,
            storage=storage,
            directory=directory,
            retry_policy=retry_policy,
            deadline=deadline,
            **format_kwargs,
        )
    return ProcessParallelSpMV(
        matrix,
        nworkers,
        format_name=format_name,
        storage=storage,
        directory=directory,
        convert_cache=convert_cache,
        chunk_timeout=chunk_timeout,
        retry_policy=retry_policy,
        deadline=deadline,
        breaker_threshold=breaker_threshold,
        breaker_cooldown_s=breaker_cooldown_s,
        **format_kwargs,
    )
