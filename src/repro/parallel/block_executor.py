"""Block-partitioned multithreaded SpMV (Section II-C, third scheme).

Each thread owns a set of 2-D tiles ("an arbitrary two-dimensional
block" in the paper's words), computes each tile's contribution from
the matching ``x`` slice, and accumulates into a private ``y`` reduced
at the end.  The paper highlights the scheme's knob -- "configurable
data sizes for each thread" -- for machines with small local stores
(the Cell); here the tile grid is the configuration.

Fault contract (unified onto :class:`~repro.resilience.policy.
RetryPolicy` in PR 10): every chunk's outcome is collected, failures
aggregate into one :class:`~repro.errors.ExecutionError` with
per-chunk context, an optional ``chunk_timeout=`` bounds the wait per
chunk (timed-out chunks are marked ``executor.chunk.abandoned``), and
an optional ``deadline=`` caps the whole run.  Like the column
executor, the default policy retries nothing — tiles are materialized
slices, not cached encodes — and that divergence from the row executor
is now an explicit :data:`~repro.parallel.column_executor.
NO_RETRY_POLICY` rather than missing code.  Retries re-run the whole
tile set of the chunk (the partial ``y`` is zeroed first, so a re-run
is idempotent).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import ExecutionError, PartitionError
from repro.formats.base import SparseMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.conversions import to_csr
from repro.parallel.column_executor import NO_RETRY_POLICY
from repro.parallel.executor import (
    ChunkFailure,
    collect_chunk_failures,
    reduce_partial_results,
)
from repro.parallel.partition import BlockPartition, block_partition
from repro.resilience import chaos
from repro.resilience.policy import Deadline, RetryPolicy
from repro.telemetry import core as telemetry


def _extract_tile(
    csr: CSRMatrix, rows: tuple[int, int], cols: tuple[int, int]
) -> CSRMatrix:
    """The sub-matrix of *csr* inside the tile, with re-based indices."""
    r0, r1 = rows
    c0, c1 = cols
    sub = csr.row_slice(r0, r1)
    keep = (sub.col_ind >= c0) & (sub.col_ind < c1)
    lens = np.zeros(sub.nrows, dtype=np.int64)
    rows_of = sub.row_of_entry()
    np.add.at(lens, rows_of[keep], 1)
    row_ptr = np.zeros(sub.nrows + 1, dtype=np.int64)
    np.cumsum(lens, out=row_ptr[1:])
    return CSRMatrix(
        sub.nrows,
        c1 - c0,
        row_ptr.astype(np.int32),
        (sub.col_ind[keep].astype(np.int64) - c0).astype(np.int32),
        sub.values[keep],
    )


class BlockParallelSpMV:
    """Tile-grid SpMV with private ``y`` accumulation per thread.

    Parameters
    ----------
    matrix:
        Source matrix (normalized through CSR once).
    nthreads:
        Worker count; tiles are assigned round-robin.
    grid:
        Tile grid ``(row_blocks, col_blocks)``; default
        ``nthreads x nthreads``.
    chunk_timeout:
        Seconds to wait for each chunk per call (``None`` = forever);
        an exceeded chunk is a :class:`TimeoutError` failure inside the
        aggregated :class:`~repro.errors.ExecutionError` and is marked
        ``executor.chunk.abandoned``.
    retry_policy:
        Chunk retry policy; defaults to no retries (see module
        docstring).
    deadline:
        Optional wall-clock budget for the whole run.
    """

    def __init__(
        self,
        matrix: SparseMatrix,
        nthreads: int,
        *,
        grid: tuple[int, int] | None = None,
        chunk_timeout: float | None = None,
        retry_policy: RetryPolicy | None = None,
        deadline: Deadline | None = None,
    ):
        if nthreads < 1:
            raise PartitionError(f"nthreads must be >= 1, got {nthreads}")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise PartitionError(
                f"chunk_timeout must be positive, got {chunk_timeout}"
            )
        csr = to_csr(matrix)
        self.nrows, self.ncols = csr.shape
        self.nthreads = nthreads
        self.chunk_timeout = chunk_timeout
        self.retry_policy = (
            NO_RETRY_POLICY if retry_policy is None else retry_policy
        )
        self.deadline = deadline
        self._retry_budget = self.retry_policy.new_budget()
        self._retry_rng = self.retry_policy.new_rng()
        self.partition: BlockPartition = block_partition(
            csr.row_ptr, csr.ncols, nthreads, grid=grid
        )
        # Materialize each thread's tiles once.
        self.tiles: list[list[tuple[tuple[int, int], tuple[int, int], CSRMatrix]]] = []
        for t in range(nthreads):
            mine = []
            for rows, cols in self.partition.tiles_of(t):
                tile = _extract_tile(csr, rows, cols)
                if tile.nnz:
                    mine.append((rows, cols, tile))
            self.tiles.append(mine)
        self._partials = [np.zeros(self.nrows) for _ in range(nthreads)]
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=nthreads) if nthreads > 1 else None
        )

    def __call__(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise PartitionError(f"x has shape {x.shape}, expected ({self.ncols},)")

        if self.deadline is not None:
            self.deadline.check("parallel.call")

        def work(t: int) -> ChunkFailure | None:
            nnz = sum(tile.nnz for _, _, tile in self.tiles[t])
            retried = False

            def on_retry(exc: BaseException, attempt: int) -> None:
                nonlocal retried
                retried = True

            def attempt(tiles) -> None:
                chaos.trip(
                    "thread.chunk",
                    thread=t,
                    lo=0,
                    hi=len(tiles),
                    kind="block",
                )
                y = self._partials[t]
                y[:] = 0.0
                for (r0, _r1), (c0, c1), tile in tiles:
                    y[r0 : r0 + tile.nrows] += tile.spmv(x[c0:c1])

            with telemetry.span(
                "parallel.chunk",
                thread=t,
                lo=0,
                hi=len(self.tiles[t]),
                nnz=int(nnz),
                kind="block",
            ):
                try:
                    self.retry_policy.run(
                        attempt,
                        target=self.tiles[t],
                        budget=self._retry_budget,
                        deadline=self.deadline,
                        rng=self._retry_rng,
                        on_retry=on_retry,
                    )
                    return None
                except Exception as exc:
                    return ChunkFailure(
                        t, 0, len(self.tiles[t]), exc, retried=retried
                    )

        failures: list[ChunkFailure] = []
        with telemetry.span("parallel.spmv", threads=self.nthreads, kind="block"):
            if self._pool is None:
                failure = work(0)
                if failure is not None:
                    failures.append(failure)
            else:
                futures = [
                    self._pool.submit(work, t) for t in range(self.nthreads)
                ]
                failures.extend(
                    collect_chunk_failures(
                        futures,
                        lambda t: (0, len(self.tiles[t])),
                        chunk_timeout=self.chunk_timeout,
                        deadline=self.deadline,
                        kind="block",
                    )
                )
            if failures:
                detail = "; ".join(f.describe() for f in failures)
                raise ExecutionError(
                    f"{len(failures)} of {self.nthreads} chunks failed: "
                    f"{detail}",
                    failures=tuple(failures),
                )
            return reduce_partial_results(self._partials, out=out)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "BlockParallelSpMV":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
