"""Parallelization of SpMV: partitioning, thread and process executors."""

from repro.parallel.partition import (
    BlockPartition,
    ColumnPartition,
    RowPartition,
    balance_by_nnz,
    block_partition,
    column_partition,
    row_partition,
)
from repro.parallel.backends import BACKENDS, STORAGES, make_executor
from repro.parallel.block_executor import BlockParallelSpMV
from repro.parallel.column_executor import ColumnParallelSpMV
from repro.parallel.executor import ParallelSpMV, reduce_partial_results
from repro.parallel.process_executor import ProcessParallelSpMV

__all__ = [
    "RowPartition",
    "ColumnPartition",
    "BlockPartition",
    "balance_by_nnz",
    "row_partition",
    "column_partition",
    "block_partition",
    "ParallelSpMV",
    "ProcessParallelSpMV",
    "ColumnParallelSpMV",
    "BlockParallelSpMV",
    "BACKENDS",
    "STORAGES",
    "make_executor",
    "reduce_partial_results",
]
