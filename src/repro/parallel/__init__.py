"""Parallelization of SpMV: work partitioning and a threaded executor."""

from repro.parallel.partition import (
    BlockPartition,
    ColumnPartition,
    RowPartition,
    balance_by_nnz,
    block_partition,
    column_partition,
    row_partition,
)
from repro.parallel.block_executor import BlockParallelSpMV
from repro.parallel.column_executor import ColumnParallelSpMV
from repro.parallel.executor import ParallelSpMV, reduce_partial_results

__all__ = [
    "RowPartition",
    "ColumnPartition",
    "BlockPartition",
    "balance_by_nnz",
    "row_partition",
    "column_partition",
    "block_partition",
    "ParallelSpMV",
    "ColumnParallelSpMV",
    "BlockParallelSpMV",
    "reduce_partial_results",
]
