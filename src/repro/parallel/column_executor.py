"""Column-partitioned multithreaded SpMV (Section II-C, second scheme).

Each thread owns a contiguous block of *columns* (and the matching
slice of ``x``), accumulates into a **private** ``y`` copy -- the
paper's prescription for avoiding cache-line ping-pong on shared ``y``
-- and the copies are reduced at the end of every multiplication.

Compared to row partitioning this trades an ``O(threads * nrows)``
reduction for better ``x`` locality; the paper leaves the scheme
comparison to future work, and :func:`compare_partitionings` in
``examples/scaling_study.py``-style studies can use both executors to
explore it.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import PartitionError
from repro.formats.base import SparseMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.conversions import to_csr
from repro.parallel.executor import reduce_partial_results
from repro.parallel.partition import ColumnPartition, column_partition
from repro.telemetry import core as telemetry


class ColumnParallelSpMV:
    """Column-partitioned SpMV over CSC chunks with private ``y`` copies."""

    def __init__(self, matrix: SparseMatrix, nthreads: int):
        if nthreads < 1:
            raise PartitionError(f"nthreads must be >= 1, got {nthreads}")
        csc = CSCMatrix.from_csr(to_csr(matrix))
        self.nrows, self.ncols = csc.shape
        self.nthreads = nthreads
        self.partition: ColumnPartition = column_partition(csc.col_ptr, nthreads)
        self.chunks: list[CSCMatrix] = [
            csc.col_slice(*self.partition.cols_of(t)) for t in range(nthreads)
        ]
        # Private y per thread, reused across calls.
        self._partials = [np.zeros(self.nrows) for _ in range(nthreads)]
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=nthreads) if nthreads > 1 else None
        )

    def __call__(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise PartitionError(f"x has shape {x.shape}, expected ({self.ncols},)")

        def work(t: int) -> np.ndarray:
            lo, hi = self.partition.cols_of(t)
            with telemetry.span(
                "parallel.chunk",
                thread=t,
                lo=lo,
                hi=hi,
                nnz=int(self.partition.nnz_per_thread[t]),
                kind="column",
            ):
                return self.chunks[t].spmv(x[lo:hi], out=self._partials[t])

        with telemetry.span("parallel.spmv", threads=self.nthreads, kind="column"):
            if self._pool is None:
                partials = [work(0)]
            else:
                partials = list(self._pool.map(work, range(self.nthreads)))
            return reduce_partial_results(partials, out=out)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ColumnParallelSpMV":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
