"""Column-partitioned multithreaded SpMV (Section II-C, second scheme).

Each thread owns a contiguous block of *columns* (and the matching
slice of ``x``), accumulates into a **private** ``y`` copy -- the
paper's prescription for avoiding cache-line ping-pong on shared ``y``
-- and the copies are reduced at the end of every multiplication.

Compared to row partitioning this trades an ``O(threads * nrows)``
reduction for better ``x`` locality; the paper leaves the scheme
comparison to future work, and :func:`compare_partitionings` in
``examples/scaling_study.py``-style studies can use both executors to
explore it.

Fault contract (unified onto :class:`~repro.resilience.policy.
RetryPolicy` in PR 10): every chunk's outcome is collected, failures
aggregate into one :class:`~repro.errors.ExecutionError` with
per-chunk context, an optional ``chunk_timeout=`` bounds the wait per
chunk (timed-out chunks are marked ``executor.chunk.abandoned``), and
an optional ``deadline=`` caps the whole run.  The *default* policy
here retries nothing: the CSC chunks are plain slices, not cached
encodes, so the row executor's decode class cannot occur and there is
nothing to invalidate — where the row executor defaults to one
decode-class retry, this executor's divergence is now an explicit
``RetryPolicy(max_attempts=1)`` instead of missing code.  A caller
who *wants* in-place re-runs (transient faults under test) passes a
policy with more attempts.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import ExecutionError, PartitionError
from repro.formats.base import SparseMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.conversions import to_csr
from repro.parallel.executor import (
    ChunkFailure,
    collect_chunk_failures,
    reduce_partial_results,
)
from repro.parallel.partition import ColumnPartition, column_partition
from repro.resilience import chaos
from repro.resilience.policy import Deadline, RetryPolicy
from repro.telemetry import core as telemetry

#: Slice-chunk executors retry nothing by default: no cached encode to
#: invalidate, so a second identical attempt cannot change the answer.
NO_RETRY_POLICY = RetryPolicy(max_attempts=1, budget=0)


class ColumnParallelSpMV:
    """Column-partitioned SpMV over CSC chunks with private ``y`` copies.

    Parameters
    ----------
    matrix:
        Source matrix (normalized through CSR, then CSC).
    nthreads:
        Worker count; one column block and private ``y`` per thread.
    chunk_timeout:
        Seconds to wait for each chunk per call (``None`` = forever);
        an exceeded chunk is a :class:`TimeoutError` failure inside the
        aggregated :class:`~repro.errors.ExecutionError` and is marked
        ``executor.chunk.abandoned``.
    retry_policy:
        Chunk retry policy; defaults to :data:`NO_RETRY_POLICY` (see
        the module docstring for why this diverges from the row
        executor).
    deadline:
        Optional wall-clock budget for the whole run; caps per-chunk
        waits and fails expired calls with
        :class:`~repro.errors.DeadlineExceeded`.
    """

    def __init__(
        self,
        matrix: SparseMatrix,
        nthreads: int,
        *,
        chunk_timeout: float | None = None,
        retry_policy: RetryPolicy | None = None,
        deadline: Deadline | None = None,
    ):
        if nthreads < 1:
            raise PartitionError(f"nthreads must be >= 1, got {nthreads}")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise PartitionError(
                f"chunk_timeout must be positive, got {chunk_timeout}"
            )
        csc = CSCMatrix.from_csr(to_csr(matrix))
        self.nrows, self.ncols = csc.shape
        self.nthreads = nthreads
        self.chunk_timeout = chunk_timeout
        self.retry_policy = (
            NO_RETRY_POLICY if retry_policy is None else retry_policy
        )
        self.deadline = deadline
        self._retry_budget = self.retry_policy.new_budget()
        self._retry_rng = self.retry_policy.new_rng()
        self.partition: ColumnPartition = column_partition(csc.col_ptr, nthreads)
        self.chunks: list[CSCMatrix] = [
            csc.col_slice(*self.partition.cols_of(t)) for t in range(nthreads)
        ]
        # Private y per thread, reused across calls.
        self._partials = [np.zeros(self.nrows) for _ in range(nthreads)]
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=nthreads) if nthreads > 1 else None
        )

    def __call__(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise PartitionError(f"x has shape {x.shape}, expected ({self.ncols},)")

        if self.deadline is not None:
            self.deadline.check("parallel.call")

        def work(t: int) -> ChunkFailure | None:
            lo, hi = self.partition.cols_of(t)
            retried = False

            def on_retry(exc: BaseException, attempt: int) -> None:
                nonlocal retried
                retried = True

            def attempt(chunk) -> None:
                chaos.trip(
                    "thread.chunk", thread=t, lo=lo, hi=hi, kind="column"
                )
                chunk.spmv(x[lo:hi], out=self._partials[t])

            with telemetry.span(
                "parallel.chunk",
                thread=t,
                lo=lo,
                hi=hi,
                nnz=int(self.partition.nnz_per_thread[t]),
                kind="column",
            ):
                try:
                    self.retry_policy.run(
                        attempt,
                        target=self.chunks[t],
                        budget=self._retry_budget,
                        deadline=self.deadline,
                        rng=self._retry_rng,
                        on_retry=on_retry,
                    )
                    return None
                except Exception as exc:
                    return ChunkFailure(t, lo, hi, exc, retried=retried)

        failures: list[ChunkFailure] = []
        with telemetry.span("parallel.spmv", threads=self.nthreads, kind="column"):
            if self._pool is None:
                failure = work(0)
                if failure is not None:
                    failures.append(failure)
            else:
                futures = [
                    self._pool.submit(work, t) for t in range(self.nthreads)
                ]
                failures.extend(
                    collect_chunk_failures(
                        futures,
                        self.partition.cols_of,
                        chunk_timeout=self.chunk_timeout,
                        deadline=self.deadline,
                        kind="column",
                    )
                )
            if failures:
                detail = "; ".join(f.describe() for f in failures)
                raise ExecutionError(
                    f"{len(failures)} of {self.nthreads} chunks failed: "
                    f"{detail}",
                    failures=tuple(failures),
                )
            return reduce_partial_results(self._partials, out=out)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ColumnParallelSpMV":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
