"""Column-partitioned multithreaded SpMV (Section II-C, second scheme).

Each thread owns a contiguous block of *columns* (and the matching
slice of ``x``), accumulates into a **private** ``y`` copy -- the
paper's prescription for avoiding cache-line ping-pong on shared ``y``
-- and the copies are reduced at the end of every multiplication.

Compared to row partitioning this trades an ``O(threads * nrows)``
reduction for better ``x`` locality; the paper leaves the scheme
comparison to future work, and :func:`compare_partitionings` in
``examples/scaling_study.py``-style studies can use both executors to
explore it.

Fault contract (ported from the row executor in PR 7): every chunk's
outcome is collected, failures aggregate into one
:class:`~repro.errors.ExecutionError` with per-chunk context, and an
optional ``chunk_timeout=`` bounds the wait per chunk.  There is no
retry tier here -- the CSC chunks are plain slices, not cached encodes,
so there is nothing to invalidate and rebuild.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError

import numpy as np

from repro.errors import ExecutionError, PartitionError
from repro.formats.base import SparseMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.conversions import to_csr
from repro.parallel.executor import ChunkFailure, reduce_partial_results
from repro.parallel.partition import ColumnPartition, column_partition
from repro.telemetry import core as telemetry


class ColumnParallelSpMV:
    """Column-partitioned SpMV over CSC chunks with private ``y`` copies.

    Parameters
    ----------
    matrix:
        Source matrix (normalized through CSR, then CSC).
    nthreads:
        Worker count; one column block and private ``y`` per thread.
    chunk_timeout:
        Seconds to wait for each chunk per call (``None`` = forever);
        an exceeded chunk is a :class:`TimeoutError` failure inside the
        aggregated :class:`~repro.errors.ExecutionError`.
    """

    def __init__(
        self,
        matrix: SparseMatrix,
        nthreads: int,
        *,
        chunk_timeout: float | None = None,
    ):
        if nthreads < 1:
            raise PartitionError(f"nthreads must be >= 1, got {nthreads}")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise PartitionError(
                f"chunk_timeout must be positive, got {chunk_timeout}"
            )
        csc = CSCMatrix.from_csr(to_csr(matrix))
        self.nrows, self.ncols = csc.shape
        self.nthreads = nthreads
        self.chunk_timeout = chunk_timeout
        self.partition: ColumnPartition = column_partition(csc.col_ptr, nthreads)
        self.chunks: list[CSCMatrix] = [
            csc.col_slice(*self.partition.cols_of(t)) for t in range(nthreads)
        ]
        # Private y per thread, reused across calls.
        self._partials = [np.zeros(self.nrows) for _ in range(nthreads)]
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=nthreads) if nthreads > 1 else None
        )

    def __call__(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise PartitionError(f"x has shape {x.shape}, expected ({self.ncols},)")

        def work(t: int) -> ChunkFailure | None:
            lo, hi = self.partition.cols_of(t)
            with telemetry.span(
                "parallel.chunk",
                thread=t,
                lo=lo,
                hi=hi,
                nnz=int(self.partition.nnz_per_thread[t]),
                kind="column",
            ):
                try:
                    self.chunks[t].spmv(x[lo:hi], out=self._partials[t])
                    return None
                except Exception as exc:
                    return ChunkFailure(t, lo, hi, exc, retried=False)

        failures: list[ChunkFailure] = []
        with telemetry.span("parallel.spmv", threads=self.nthreads, kind="column"):
            if self._pool is None:
                failure = work(0)
                if failure is not None:
                    failures.append(failure)
            else:
                futures = [
                    self._pool.submit(work, t) for t in range(self.nthreads)
                ]
                for t, future in enumerate(futures):
                    lo, hi = self.partition.cols_of(t)
                    try:
                        failure = future.result(timeout=self.chunk_timeout)
                    except FuturesTimeoutError:
                        failure = ChunkFailure(
                            t,
                            lo,
                            hi,
                            TimeoutError(
                                f"chunk exceeded {self.chunk_timeout}s"
                            ),
                            retried=False,
                        )
                    if failure is not None:
                        failures.append(failure)
            if failures:
                detail = "; ".join(f.describe() for f in failures)
                raise ExecutionError(
                    f"{len(failures)} of {self.nthreads} chunks failed: "
                    f"{detail}",
                    failures=tuple(failures),
                )
            return reduce_partial_results(self._partials, out=out)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ColumnParallelSpMV":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
