"""Threaded SpMV execution.

:class:`ParallelSpMV` realizes the paper's multithreaded kernel: the
matrix is split once (row partitioning, static nnz balancing), each
thread owns a contiguous block of rows of ``y``, and every call runs
the per-thread kernels concurrently on a persistent thread pool.

Fault tolerance (PR 5): a worker failure no longer poisons the run
silently or kills it on the first exception.  Every chunk's outcome is
collected; chunks that fail with a decode-class error
(:class:`~repro.errors.EncodingError` / :class:`~repro.errors.
IntegrityError` / :class:`~repro.errors.FormatError`) get one bounded
retry after their cached encode is invalidated and rebuilt from the
source matrix (``executor.retry`` counter), and whatever still fails
is aggregated into a single :class:`~repro.errors.ExecutionError`
carrying per-chunk (thread id, row range) context.  An optional
per-chunk timeout bounds how long the caller waits on a wedged worker
(the thread itself cannot be killed — CPython has no mechanism — but
the call returns with a :class:`TimeoutError` failure instead of
hanging).

Honesty note (also in DESIGN.md): NumPy releases the GIL inside its
array operations, so the vectorized kernels do overlap -- but CPython
serializes every line of Python-level bookkeeping (and this container
has a single CPU), so *measured* wall-clock scaling from this thread
backend says little about the paper's question.  The backend that
escapes the GIL is :class:`~repro.parallel.process_executor.
ProcessParallelSpMV`: separate processes attaching shared-memory or
memory-mapped shards (``repro.parallel.backends.make_executor`` picks
between them).  This executor remains the reference for semantics --
results must be bit-identical to serial execution -- and the model
numbers in the tables come from :mod:`repro.machine`.

Storage axis (PR 7): ``storage="mem"`` keeps per-thread chunks as
ordinary cached encodes; ``storage="mmap"`` materializes them in a
:class:`~repro.storage.shard.ShardStore` of packed memmap files, so a
matrix larger than RAM can still be driven by the thread backend
(chunk arrays stay disk-backed; the page cache does the streaming).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.compress.encode_cache import DEFAULT_CACHE, ConvertCache
from repro.errors import (
    EncodingError,
    ExecutionError,
    FormatError,
    IntegrityError,
    PartitionError,
)
from repro.formats.base import SparseMatrix, check_out_aliasing
from repro.formats.conversions import to_csr
from repro.kernels.plan import PLANNABLE_FORMATS, get_plan
from repro.obs import core as obs
from repro.parallel.partition import RowPartition, row_partition
from repro.resilience import chaos
from repro.resilience.policy import DEFAULT_RETRY_POLICY, Deadline, RetryPolicy
from repro.telemetry import core as telemetry

#: Error types that warrant invalidating the chunk's cached encode and
#: retrying once (decode-time failures of possibly-stale cached data).
#: Kept as the worker-side classification the process backend pickles
#: across; the retry *decision* now lives in
#: :class:`~repro.resilience.policy.RetryPolicy` (``retry_on=
#: ("decode",)`` maps to exactly this tuple).
RETRYABLE = (EncodingError, IntegrityError, FormatError)


@dataclass(frozen=True)
class ChunkFailure:
    """One worker chunk's terminal failure within a parallel call."""

    thread: int
    lo: int
    hi: int
    error: BaseException
    #: Whether a cache-invalidating retry was attempted before giving up.
    retried: bool
    #: ``traceback.format_exc()`` captured inside a pool worker, when the
    #: failure crossed a process boundary (exception objects do not).
    worker_traceback: str | None = None

    def describe(self) -> str:
        base = (
            f"thread {self.thread} rows [{self.lo}, {self.hi}): "
            f"{type(self.error).__name__}: {self.error}"
        )
        if self.worker_traceback:
            frames = [
                line.strip()
                for line in self.worker_traceback.splitlines()
                if line.lstrip().startswith('File "')
            ]
            if frames:
                base += f" [worker: {frames[-1]}]"
        return base


def reduce_partial_results(
    partials: Sequence[np.ndarray], out: np.ndarray | None = None
) -> np.ndarray:
    """Sum per-thread ``y`` copies (the column-partitioning reduction).

    With ``out=`` the sum accumulates into the caller's buffer (fully
    overwritten), so an iterative caller allocates nothing per call;
    without it, one fresh copy of the first partial is made, as before.

    Aliasing contract: ``out`` may be ``partials[0]`` itself (the
    overwrite is then a no-op and the remaining partials accumulate on
    top), but must not overlap any *later* partial — those are read
    after ``out`` starts changing, so overlap silently corrupts the
    sum.  Violations raise :class:`~repro.errors.IntegrityError`.
    """
    if not partials:
        raise PartitionError("no partial results to reduce")
    if out is None:
        out = np.array(partials[0], dtype=np.float64, copy=True)
    else:
        if any(p is out for p in partials[1:]):
            raise IntegrityError(
                "out= buffer is also a later partial; it would be read "
                "after being overwritten"
            )
        check_out_aliasing(out, *partials[1:])
        np.copyto(out, partials[0])
    for p in partials[1:]:
        out += p
    return out


def abandon_chunk(
    t: int,
    lo: int,
    hi: int,
    *,
    timeout: float | None,
    kind: str,
    backend: str = "thread",
) -> ChunkFailure:
    """Record one timed-out chunk and build its failure.

    A thread cannot be cancelled, so the worker keeps running and its
    (eventual) result is discarded — the chunk is *abandoned*.  The
    ``executor.chunk.abandoned`` counter makes that visible: the SLO
    engine can rate-alert on it, and imbalance recovery excludes the
    abandoned span from per-thread timing (its wall time reflects the
    wait bound, not the work).
    """
    telemetry.count(
        "executor.chunk.abandoned",
        1,
        extra={
            "thread": t,
            "lo": lo,
            "hi": hi,
            "timeout_s": 0.0 if timeout is None else float(timeout),
        },
        kind=kind,
        backend=backend,
    )
    obs.mark("executor.chunk.abandoned", 1, kind=kind, backend=backend)
    return ChunkFailure(
        t,
        lo,
        hi,
        TimeoutError(f"chunk exceeded {timeout}s"),
        retried=False,
    )


def collect_chunk_failures(
    futures,
    bounds_of,
    *,
    chunk_timeout: float | None,
    deadline: Deadline | None = None,
    kind: str = "row",
) -> list[ChunkFailure]:
    """The shared result loop of the three thread executors.

    Waits on every chunk future; a wait that exceeds the per-chunk
    timeout (capped by the run *deadline* when one is set) becomes an
    abandoned-chunk failure via :func:`abandon_chunk`.  *bounds_of(t)*
    supplies the (lo, hi) context for thread *t*'s failure records.
    """
    failures: list[ChunkFailure] = []
    for t, future in enumerate(futures):
        lo, hi = bounds_of(t)
        timeout = (
            chunk_timeout if deadline is None else deadline.cap(chunk_timeout)
        )
        try:
            failure = future.result(timeout=timeout)
        except FuturesTimeoutError:
            failure = abandon_chunk(
                t, lo, hi, timeout=timeout, kind=kind
            )
        if failure is not None:
            failures.append(failure)
    return failures


class ParallelSpMV:
    """Row-partitioned multithreaded SpMV over any registered format.

    Parameters
    ----------
    matrix:
        Source matrix (any format; it is normalized through CSR once).
    nthreads:
        Worker count.  The per-thread chunks are built at construction
        (the paper's setup cost) and reused by every :meth:`__call__`.
    format_name:
        Storage format for the per-thread chunks (``"csr"``,
        ``"csr-du"``, ``"csr-vi"``, ...).
    format_kwargs:
        Extra arguments for the chunk conversion (e.g. ``policy=``).
    convert_cache:
        Structure-keyed cache for the chunk encodes (the process-wide
        default when omitted).  Chunks are keyed on the source matrix,
        format, kwargs and row bounds, so rebuilding an executor over
        the same matrix -- a sweep iterating kernels or repeat counts
        at one thread count -- reuses every encode.
    chunk_timeout:
        Seconds to wait for each chunk per call (``None`` = forever).
        A chunk exceeding it is reported as a :class:`TimeoutError`
        inside the aggregated :class:`~repro.errors.ExecutionError`;
        the worker thread itself keeps running to completion (threads
        cannot be killed) but its result is discarded.
    storage:
        ``"mem"`` (default) -- chunks are ordinary cached encodes;
        ``"mmap"`` -- chunks live in a packed memmap
        :class:`~repro.storage.shard.ShardStore` under *directory*, so
        their arrays stay disk-backed (the thread backend's out-of-core
        mode).
    directory:
        Shard-file directory, required for ``storage="mmap"``.
    retry_policy:
        :class:`~repro.resilience.policy.RetryPolicy` governing chunk
        retries.  The default is one immediate cache-invalidating
        retry of decode-class failures — exactly the hardcoded PR-5
        behavior, now declarative.  One retry budget is shared by all
        chunks across all calls of this executor.
    deadline:
        Optional :class:`~repro.resilience.policy.Deadline`: one
        wall-clock budget for this executor's whole run.  Caps every
        per-chunk wait at the time remaining and fails calls with a
        typed :class:`~repro.errors.DeadlineExceeded` once spent.
    """

    backend = "thread"

    def __init__(
        self,
        matrix: SparseMatrix,
        nthreads: int,
        *,
        format_name: str = "csr",
        convert_cache: ConvertCache | None = None,
        chunk_timeout: float | None = None,
        storage: str = "mem",
        directory: str | None = None,
        retry_policy: RetryPolicy | None = None,
        deadline: Deadline | None = None,
        **format_kwargs,
    ):
        if nthreads < 1:
            raise PartitionError(f"nthreads must be >= 1, got {nthreads}")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise PartitionError(
                f"chunk_timeout must be positive, got {chunk_timeout}"
            )
        if storage not in ("mem", "mmap"):
            raise PartitionError(
                f"thread backend storage must be 'mem' or 'mmap', "
                f"got {storage!r}"
            )
        csr = to_csr(matrix)
        self.nrows, self.ncols = csr.shape
        self.nthreads = nthreads
        self.chunk_timeout = chunk_timeout
        self.retry_policy = (
            DEFAULT_RETRY_POLICY if retry_policy is None else retry_policy
        )
        self.deadline = deadline
        self._retry_budget = self.retry_policy.new_budget()
        self._retry_rng = self.retry_policy.new_rng()
        # Kept for chunk rebuilds on retry (see _rebuild_chunk).
        self._csr = csr
        self._format_name = format_name
        self._format_kwargs = dict(format_kwargs)
        self._cache = DEFAULT_CACHE if convert_cache is None else convert_cache
        self.partition: RowPartition = row_partition(csr.row_ptr, nthreads)
        self.store = None
        if storage == "mmap":
            from repro.storage.shard import ShardStore

            self.store = ShardStore.build(
                csr,
                format_name,
                nthreads,
                storage="mmap",
                directory=directory,
                convert_cache=self._cache,
                boundaries=self.partition.boundaries.tolist(),
                deadline=deadline,
                **format_kwargs,
            )
        self.chunks: list[SparseMatrix] = [
            self._encode_chunk(t) for t in range(nthreads)
        ]
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=nthreads) if nthreads > 1 else None
        )

    def _encode_chunk(self, t: int) -> SparseMatrix:
        """Convert thread *t*'s row block through the cache; plan it.

        The kernel plan is built up front (part of the paper's one-time
        setup cost), so the first timed call is already hot.  With
        ``storage="mmap"`` the chunk is attached from the shard store
        instead, so its arrays remain disk-backed views.
        """
        if self.store is not None:
            chunk = self.store.attach(t)
        else:
            lo, hi = self.partition.rows_of(t)
            chunk = self._cache.get_or_convert(
                self._csr,
                self._format_name,
                rows=(lo, hi),
                **self._format_kwargs,
            )
        if chunk.name in PLANNABLE_FORMATS:
            get_plan(chunk)
        return chunk

    def _rebuild_chunk(self, t: int) -> SparseMatrix:
        """Invalidate thread *t*'s cached encode and re-encode fresh."""
        lo, hi = self.partition.rows_of(t)
        if self.store is not None:
            self.store.rebuild_shard(t)
        else:
            self._cache.invalidate(
                self._csr, self._format_name, rows=(lo, hi), **self._format_kwargs
            )
        chunk = self._encode_chunk(t)
        self.chunks[t] = chunk
        return chunk

    def __call__(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Compute ``y = A x`` with all threads; returns ``y``.

        All chunk failures of the call are aggregated into one
        :class:`~repro.errors.ExecutionError` (nothing is silently
        dropped); decode-class failures get one cache-invalidating
        retry first.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise FormatError(
                f"x has shape {x.shape}, expected ({self.ncols},)"
            )
        if out is not None:
            # Chunks write y while every chunk reads x concurrently; an
            # aliased buffer races with those reads.
            check_out_aliasing(out, x)
        y = out if out is not None else np.empty(self.nrows, dtype=np.float64)

        if self.deadline is not None:
            self.deadline.check("parallel.call")

        def work(t: int) -> ChunkFailure | None:
            lo, hi = self.partition.rows_of(t)
            # Live observability: one histogram sample per chunk (the
            # serving layer's latency signal).  The disabled path is a
            # single attribute check, same contract as telemetry.
            runtime = obs.get_runtime()
            t0 = time.perf_counter() if runtime is not None else 0.0
            retried = False

            def on_retry(exc: BaseException, attempt: int) -> None:
                nonlocal retried
                retried = True
                telemetry.count(
                    "executor.retry",
                    1,
                    extra={
                        "thread": t,
                        "lo": lo,
                        "hi": hi,
                        "error": type(exc).__name__,
                    },
                    format=self._format_name,
                )
                obs.mark("executor.retry", 1, format=self._format_name)

            def attempt(chunk) -> None:
                chaos.trip("thread.chunk", thread=t, lo=lo, hi=hi, kind="row")
                chunk.spmv(x, out=y[lo:hi])

            with telemetry.span(
                "parallel.chunk",
                thread=t,
                lo=lo,
                hi=hi,
                nnz=int(self.partition.nnz_per_thread[t]),
                kind="row",
            ):
                try:
                    self.retry_policy.run(
                        attempt,
                        target=self.chunks[t],
                        rebuild=lambda: self._rebuild_chunk(t),
                        budget=self._retry_budget,
                        deadline=self.deadline,
                        rng=self._retry_rng,
                        on_retry=on_retry,
                    )
                    if runtime is not None:
                        runtime.observe(
                            "spmv.chunk.seconds",
                            time.perf_counter() - t0,
                            format=self._format_name,
                            backend=self.backend,
                        )
                    return None
                except Exception as exc:
                    return ChunkFailure(t, lo, hi, exc, retried=retried)

        failures: list[ChunkFailure] = []
        runtime = obs.get_runtime()
        call_t0 = time.perf_counter() if runtime is not None else 0.0
        with telemetry.span("parallel.spmv", threads=self.nthreads):
            if self._pool is None:
                failure = work(0)
                if failure is not None:
                    failures.append(failure)
            else:
                futures = [
                    self._pool.submit(work, t) for t in range(self.nthreads)
                ]
                failures.extend(
                    collect_chunk_failures(
                        futures,
                        self.partition.rows_of,
                        chunk_timeout=self.chunk_timeout,
                        deadline=self.deadline,
                        kind="row",
                    )
                )
        if runtime is not None:
            runtime.observe(
                "spmv.call.seconds",
                time.perf_counter() - call_t0,
                format=self._format_name,
                threads=self.nthreads,
                backend=self.backend,
            )
        if failures:
            detail = "; ".join(f.describe() for f in failures)
            raise ExecutionError(
                f"{len(failures)} of {self.nthreads} chunks failed: {detail}",
                failures=tuple(failures),
            )
        return y

    def close(self) -> None:
        """Shut the worker pool down and release any shard store."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self.store is not None:
            self.store.close()
            self.store = None

    def __enter__(self) -> "ParallelSpMV":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
