"""Threaded SpMV execution.

:class:`ParallelSpMV` realizes the paper's multithreaded kernel: the
matrix is split once (row partitioning, static nnz balancing), each
thread owns a contiguous block of rows of ``y``, and every call runs
the per-thread kernels concurrently on a persistent thread pool.

Honesty note (also in DESIGN.md): NumPy releases the GIL inside its
array operations, so the vectorized kernels do overlap -- but this
container has a single CPU and CPython serializes the Python-level
bookkeeping, so *measured* wall-clock scaling here says nothing about
the paper's question.  The executor exists so the code path is real and
testable (results must be bit-identical to serial execution); the
scaling numbers in the tables come from :mod:`repro.machine`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from repro.compress.encode_cache import ConvertCache, cached_convert
from repro.errors import PartitionError
from repro.formats.base import SparseMatrix
from repro.formats.conversions import to_csr
from repro.kernels.plan import PLANNABLE_FORMATS, get_plan
from repro.parallel.partition import RowPartition, row_partition
from repro.telemetry import core as telemetry


def reduce_partial_results(
    partials: Sequence[np.ndarray], out: np.ndarray | None = None
) -> np.ndarray:
    """Sum per-thread ``y`` copies (the column-partitioning reduction).

    With ``out=`` the sum accumulates into the caller's buffer (fully
    overwritten), so an iterative caller allocates nothing per call;
    without it, one fresh copy of the first partial is made, as before.
    """
    if not partials:
        raise PartitionError("no partial results to reduce")
    if out is None:
        out = np.array(partials[0], dtype=np.float64, copy=True)
    else:
        np.copyto(out, partials[0])
    for p in partials[1:]:
        out += p
    return out


class ParallelSpMV:
    """Row-partitioned multithreaded SpMV over any registered format.

    Parameters
    ----------
    matrix:
        Source matrix (any format; it is normalized through CSR once).
    nthreads:
        Worker count.  The per-thread chunks are built at construction
        (the paper's setup cost) and reused by every :meth:`__call__`.
    format_name:
        Storage format for the per-thread chunks (``"csr"``,
        ``"csr-du"``, ``"csr-vi"``, ...).
    format_kwargs:
        Extra arguments for the chunk conversion (e.g. ``policy=``).
    convert_cache:
        Structure-keyed cache for the chunk encodes (the process-wide
        default when omitted).  Chunks are keyed on the source matrix,
        format, kwargs and row bounds, so rebuilding an executor over
        the same matrix -- a sweep iterating kernels or repeat counts
        at one thread count -- reuses every encode.
    """

    def __init__(
        self,
        matrix: SparseMatrix,
        nthreads: int,
        *,
        format_name: str = "csr",
        convert_cache: ConvertCache | None = None,
        **format_kwargs,
    ):
        if nthreads < 1:
            raise PartitionError(f"nthreads must be >= 1, got {nthreads}")
        csr = to_csr(matrix)
        self.nrows, self.ncols = csr.shape
        self.nthreads = nthreads
        self.partition: RowPartition = row_partition(csr.row_ptr, nthreads)
        self.chunks: list[SparseMatrix] = []
        for t in range(nthreads):
            lo, hi = self.partition.rows_of(t)
            self.chunks.append(
                cached_convert(
                    csr,
                    format_name,
                    rows=(lo, hi),
                    cache=convert_cache,
                    **format_kwargs,
                )
            )
        # Build each chunk's kernel plan up front (part of the paper's
        # one-time setup cost), so the first timed call is already hot.
        for chunk in self.chunks:
            if chunk.name in PLANNABLE_FORMATS:
                get_plan(chunk)
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=nthreads) if nthreads > 1 else None
        )

    def __call__(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Compute ``y = A x`` with all threads; returns ``y``."""
        x = np.asarray(x, dtype=np.float64)
        y = out if out is not None else np.empty(self.nrows, dtype=np.float64)

        def work(t: int) -> None:
            lo, hi = self.partition.rows_of(t)
            with telemetry.span(
                "parallel.chunk",
                thread=t,
                lo=lo,
                hi=hi,
                nnz=int(self.partition.nnz_per_thread[t]),
                kind="row",
            ):
                self.chunks[t].spmv(x, out=y[lo:hi])

        with telemetry.span("parallel.spmv", threads=self.nthreads):
            if self._pool is None:
                work(0)
            else:
                # Submitting all and collecting results propagates worker
                # exceptions instead of deadlocking on them.
                list(self._pool.map(work, range(self.nthreads)))
        return y

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelSpMV":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
