"""Field codecs: encoded matrix <-> named storable fields + metadata.

A :class:`~repro.storage.shard.ShardStore` shard holds one encoded
row-range matrix.  The codec splits such a matrix into the flat field
dict a :class:`~repro.storage.provider.BufferProvider` can pack
(ndarrays and byte streams) plus a small JSON-safe ``meta`` dict
(shape, dtype choices, encoding parameters), and reassembles the exact
same matrix from attached views -- ``rebuild(extract(m)) == m`` down to
stored bytes, which the cross-backend bit-identity tests rely on.

Rebuilt arrays stay views over the provider's buffer wherever the
constructors allow: the validators go through ``np.ascontiguousarray``,
which is zero-copy for the contiguous views :func:`repro.storage.
provider.attach` produces, so an mmap-backed shard keeps its arrays
disk-backed end to end.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError
from repro.formats.csr import CSRMatrix
from repro.formats.csr_du import CSRDUMatrix
from repro.formats.csr_du_vi import CSRDUVIMatrix
from repro.formats.csr_vi import CSRVIMatrix

__all__ = ["extract_fields", "rebuild_matrix", "CODEC_FORMATS"]

CODEC_FORMATS = ("csr", "csr-du", "csr-vi", "csr-du-vi")


def extract_fields(matrix) -> tuple[dict, dict]:
    """Split an encoded *matrix* into ``(fields, meta)``.

    ``fields`` maps name -> ndarray | bytes (what gets packed into the
    shard buffer); ``meta`` is JSON-safe and rides in the manifest.
    """
    name = getattr(type(matrix), "name", type(matrix).__name__)
    if isinstance(matrix, CSRMatrix):
        fields = {
            "row_ptr": matrix.row_ptr,
            "col_ind": matrix.col_ind,
            "values": matrix.values,
        }
        meta = {
            "index_dtype": matrix.row_ptr.dtype.str,
            "col_index_dtype": matrix.col_ind.dtype.str,
        }
    elif isinstance(matrix, CSRDUVIMatrix):
        # Check before CSRDUMatrix/CSRVIMatrix: not a subclass, but the
        # field names overlap both.
        fields = {
            "ctl": matrix.ctl,
            "vals_unique": matrix.vals_unique,
            "val_ind": matrix.val_ind,
        }
        meta = {}
    elif isinstance(matrix, CSRDUMatrix):
        fields = {"ctl": matrix.ctl, "values": matrix.values}
        meta = {"policy": matrix.policy, "max_unit": int(matrix.max_unit)}
    elif isinstance(matrix, CSRVIMatrix):
        fields = {
            "row_ptr": matrix.row_ptr,
            "col_ind": matrix.col_ind,
            "vals_unique": matrix.vals_unique,
            "val_ind": matrix.val_ind,
        }
        meta = {}
    else:
        raise StorageError(
            f"no storage codec for format {name!r} "
            f"(supported: {CODEC_FORMATS})"
        )
    meta = {"format": name, "nrows": matrix.nrows, "ncols": matrix.ncols, **meta}
    return fields, meta


def rebuild_matrix(fields: dict, meta: dict):
    """Reassemble the matrix :func:`extract_fields` took apart.

    *fields* may be provider-attached views (shm / mmap); the rebuilt
    matrix keeps them as its storage without copying.
    """
    name = meta.get("format")
    nrows, ncols = int(meta["nrows"]), int(meta["ncols"])
    if name == "csr":
        return CSRMatrix(
            nrows,
            ncols,
            fields["row_ptr"],
            fields["col_ind"],
            fields["values"],
            index_dtype=np.dtype(meta["index_dtype"]),
            col_index_dtype=np.dtype(meta["col_index_dtype"]),
        )
    if name == "csr-du":
        return CSRDUMatrix(
            nrows,
            ncols,
            fields["ctl"],
            fields["values"],
            policy=meta.get("policy", "greedy"),
            max_unit=int(meta["max_unit"]),
        )
    if name == "csr-vi":
        return CSRVIMatrix(
            nrows,
            ncols,
            fields["row_ptr"],
            fields["col_ind"],
            fields["vals_unique"],
            fields["val_ind"],
        )
    if name == "csr-du-vi":
        return CSRDUVIMatrix(
            nrows,
            ncols,
            fields["ctl"],
            fields["vals_unique"],
            fields["val_ind"],
        )
    raise StorageError(
        f"no storage codec for format {name!r} (supported: {CODEC_FORMATS})"
    )
