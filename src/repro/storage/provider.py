"""Buffer providers: where a shard's encoded arrays physically live.

A shard's payload is a set of named *fields* -- the stored arrays of
one encoded row-range matrix (``row_ptr``/``col_ind``/``values`` for
CSR, the ``ctl`` byte stream for CSR-DU, ...).  A provider owns the
backing bytes and hands out a JSON-safe *handle* that any process can
:func:`attach` to get zero-copy views back:

* :class:`MemoryProvider` -- plain in-process arrays.  The handle only
  resolves inside the owning process (it is the thread backend's
  storage, and the baseline the others are checked against).
* :class:`SharedMemoryProvider` -- one ``multiprocessing.
  shared_memory.SharedMemory`` segment per shard.  The handle carries
  the segment name, so :class:`~repro.parallel.process_executor.
  ProcessParallelSpMV` workers attach without copying or pickling any
  matrix data.
* :class:`MmapProvider` -- one binary file per shard in a directory;
  attaching maps it with ``np.memmap``, so a matrix larger than RAM is
  touched one shard at a time (the out-of-core case).

All three pack fields into a single flat buffer with one deterministic
layout (name-sorted, 8-byte aligned) described by :class:`FieldSpec`
entries that ride in the handle; every field records a CRC32 at store
time, and :func:`attach` re-hashes by default -- the worker-side
validator that catches a shard poisoned between store and use (see
:mod:`repro.robust.validate` for the matching in-memory seals).
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import IntegrityError, StorageError
from repro.obs import core as _obs

__all__ = [
    "FieldSpec",
    "BufferProvider",
    "MemoryProvider",
    "SharedMemoryProvider",
    "MmapProvider",
    "pack_layout",
    "write_fields",
    "attach",
    "PROVIDER_KINDS",
]

#: Alignment of every field inside a packed shard buffer.
_ALIGN = 8

PROVIDER_KINDS = ("mem", "shm", "mmap")


def _disarm_segment(seg: "shared_memory.SharedMemory") -> None:
    """Abandon a segment whose buffer is still exported.

    Called when ``close()`` raises :class:`BufferError`: NumPy views
    over the segment are still alive, and they keep the underlying mmap
    alive through their own reference chain.  Closing the descriptor
    and dropping the object's buffer references turns its ``__del__``
    into a no-op, so a later garbage collection can never raise
    mid-run; the OS unmaps the (already unlinked) memory at process
    exit.
    """
    try:
        if seg._fd >= 0:
            os.close(seg._fd)
            seg._fd = -1
        seg._buf = None
        seg._mmap = None
    except (AttributeError, OSError):
        pass


@dataclass(frozen=True)
class FieldSpec:
    """Location and identity of one field inside a packed shard buffer."""

    name: str
    #: ``"array"`` (ndarray; dtype/shape describe it) or ``"bytes"``.
    kind: str
    dtype: str
    shape: tuple[int, ...]
    offset: int
    nbytes: int
    crc32: int

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "offset": self.offset,
            "nbytes": self.nbytes,
            "crc32": self.crc32,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FieldSpec":
        return cls(
            name=d["name"],
            kind=d["kind"],
            dtype=d["dtype"],
            shape=tuple(int(s) for s in d["shape"]),
            offset=int(d["offset"]),
            nbytes=int(d["nbytes"]),
            crc32=int(d["crc32"]),
        )


def _field_bytes(value) -> bytes:
    if isinstance(value, np.ndarray):
        return np.ascontiguousarray(value).tobytes()
    return bytes(value)


def pack_layout(fields: dict[str, np.ndarray | bytes]) -> tuple[list[FieldSpec], int]:
    """Deterministic packed layout of *fields*; returns (specs, total size).

    Fields are laid out in name order at 8-byte-aligned offsets, so the
    same payload always packs to the same bytes (the CRCs and the byte
    identity tests depend on this).
    """
    specs: list[FieldSpec] = []
    offset = 0
    for name in sorted(fields):
        value = fields[name]
        raw = _field_bytes(value)
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        if isinstance(value, np.ndarray):
            spec = FieldSpec(
                name=name,
                kind="array",
                dtype=np.ascontiguousarray(value).dtype.str,
                shape=tuple(int(s) for s in value.shape),
                offset=offset,
                nbytes=len(raw),
                crc32=zlib.crc32(raw),
            )
        else:
            spec = FieldSpec(
                name=name,
                kind="bytes",
                dtype="",
                shape=(len(raw),),
                offset=offset,
                nbytes=len(raw),
                crc32=zlib.crc32(raw),
            )
        specs.append(spec)
        offset += len(raw)
    return specs, max(offset, 1)


def write_fields(
    buf, specs: list[FieldSpec], fields: dict[str, np.ndarray | bytes]
) -> None:
    """Copy every field's bytes into *buf* (a writable buffer) per *specs*."""
    view = memoryview(buf)
    for spec in specs:
        raw = _field_bytes(fields[spec.name])
        view[spec.offset : spec.offset + spec.nbytes] = raw


def _views_from_buffer(
    buf, specs: list[FieldSpec], *, verify: bool, context: str
) -> dict[str, np.ndarray | bytes]:
    """Zero-copy field views over *buf*; CRC-checked when *verify*.

    ``bytes`` fields are the one exception to zero-copy: consumers
    (the ``ctl`` stream) require real ``bytes``, and the compressed
    index stream is the *small* side of the payload by design.

    When a live obs runtime is installed, the per-field CRC re-hash
    time is recorded into the ``storage.shard.verify.seconds``
    histogram (one sample per attach); with observability off the
    verify loop is untouched -- not even a clock read.
    """
    out: dict[str, np.ndarray | bytes] = {}
    base = np.frombuffer(buf, dtype=np.uint8)
    runtime = _obs.get_runtime() if verify else None
    verify_s = 0.0
    for spec in specs:
        raw = base[spec.offset : spec.offset + spec.nbytes]
        if verify:
            if runtime is None:
                ok = zlib.crc32(raw) == spec.crc32
            else:
                t0 = time.perf_counter()
                ok = zlib.crc32(raw) == spec.crc32
                verify_s += time.perf_counter() - t0
            if not ok:
                raise IntegrityError(
                    f"shard field {spec.name!r} failed its CRC32 check in "
                    f"{context}: backing bytes changed since the shard was "
                    "stored",
                    field=spec.name,
                )
        if spec.kind == "bytes":
            out[spec.name] = raw.tobytes()
        else:
            out[spec.name] = raw.view(np.dtype(spec.dtype)).reshape(spec.shape)
    if runtime is not None:
        runtime.observe(
            "storage.shard.verify.seconds",
            verify_s,
            storage=context.split(" ", 1)[0],
        )
    return out


class BufferProvider:
    """Interface: store packed shard payloads, resolve handles to views."""

    kind: str = ""

    def __init__(self) -> None:
        #: Bytes currently resident in this process's memory because of
        #: stored shards (0 for mmap: the pages live in the page cache
        #: and are reclaimable; that is the point of the out-of-core
        #: path).
        self.resident_bytes = 0

    def store(self, index: int, fields: dict[str, np.ndarray | bytes]) -> dict:
        raise NotImplementedError

    def free(self, index: int) -> None:
        """Release shard *index*'s backing (rebuild path); idempotent."""
        raise NotImplementedError

    def close(self, *, unlink: bool = True) -> None:
        """Release every backing segment/file (idempotent)."""
        raise NotImplementedError


class MemoryProvider(BufferProvider):
    """Fields kept as plain in-process objects (no packing, no copy)."""

    kind = "mem"

    def __init__(self) -> None:
        super().__init__()
        self._fields: dict[int, dict[str, np.ndarray | bytes]] = {}
        self._sizes: dict[int, int] = {}

    def store(self, index: int, fields: dict[str, np.ndarray | bytes]) -> dict:
        specs, _total = pack_layout(fields)
        self._fields[index] = dict(fields)
        size = sum(s.nbytes for s in specs)
        self.resident_bytes += size - self._sizes.get(index, 0)
        self._sizes[index] = size
        return {
            "kind": self.kind,
            "index": index,
            "layout": [s.as_dict() for s in specs],
        }

    def resolve(self, handle: dict, *, verify: bool) -> dict:
        index = handle["index"]
        fields = self._fields.get(index)
        if fields is None:
            raise StorageError(f"memory shard {index} is not stored here")
        if verify:
            for spec_d in handle["layout"]:
                spec = FieldSpec.from_dict(spec_d)
                raw = _field_bytes(fields[spec.name])
                if zlib.crc32(raw) != spec.crc32:
                    raise IntegrityError(
                        f"shard field {spec.name!r} failed its CRC32 check "
                        "in memory: data changed since the shard was stored",
                        field=spec.name,
                    )
        return fields

    def free(self, index: int) -> None:
        self._fields.pop(index, None)
        self.resident_bytes -= self._sizes.pop(index, 0)

    def close(self, *, unlink: bool = True) -> None:
        self._fields.clear()
        self._sizes.clear()
        self.resident_bytes = 0


class SharedMemoryProvider(BufferProvider):
    """One POSIX shared-memory segment per shard.

    The owning process keeps the :class:`SharedMemory` objects alive
    and unlinks them at :meth:`close`; worker processes attach by name
    through :func:`attach` and never unlink.
    """

    kind = "shm"

    def __init__(self) -> None:
        super().__init__()
        self._segments: dict[int, shared_memory.SharedMemory] = {}

    def store(self, index: int, fields: dict[str, np.ndarray | bytes]) -> dict:
        specs, total = pack_layout(fields)
        self.free(index)
        seg = shared_memory.SharedMemory(create=True, size=total)
        write_fields(seg.buf, specs, fields)
        self._segments[index] = seg
        self.resident_bytes += total
        return {
            "kind": self.kind,
            "index": index,
            "shm_name": seg.name,
            "size": total,
            "layout": [s.as_dict() for s in specs],
        }

    def resolve(self, handle: dict, *, verify: bool) -> dict:
        seg = self._segments.get(handle["index"])
        if seg is None or seg.name != handle["shm_name"]:
            # Not ours (or rebuilt since): attach by name like a worker.
            return attach(handle, verify=verify)
        specs = [FieldSpec.from_dict(d) for d in handle["layout"]]
        return _views_from_buffer(
            seg.buf, specs, verify=verify, context=f"shm segment {seg.name}"
        )

    def _release(self, seg: shared_memory.SharedMemory) -> None:
        try:
            seg.close()
        except BufferError:
            # A matrix built over this segment is still alive.
            _disarm_segment(seg)

    def free(self, index: int) -> None:
        seg = self._segments.pop(index, None)
        if seg is not None:
            self.resident_bytes -= seg.size
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
            self._release(seg)

    def close(self, *, unlink: bool = True) -> None:
        # shm is always unlinked: an orphaned segment outlives the
        # process and leaks kernel memory.
        for index in list(self._segments):
            self.free(index)
        self.resident_bytes = 0


class MmapProvider(BufferProvider):
    """One packed binary file per shard inside *directory*.

    ``resident_bytes`` stays 0: mapped pages belong to the page cache
    and the kernel reclaims them under pressure, which is exactly the
    out-of-core contract.  ``stored_bytes`` tracks the on-disk total.
    """

    kind = "mmap"

    def __init__(self, directory: str) -> None:
        super().__init__()
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._paths: dict[int, str] = {}
        self.stored_bytes = 0

    def _path(self, index: int) -> str:
        return os.path.join(self.directory, f"shard-{index:05d}.bin")

    def store(self, index: int, fields: dict[str, np.ndarray | bytes]) -> dict:
        specs, total = pack_layout(fields)
        path = self._path(index)
        self.free(index)
        mm = np.memmap(path, dtype=np.uint8, mode="w+", shape=(total,))
        write_fields(mm, specs, fields)
        mm.flush()
        del mm
        self._paths[index] = path
        self.stored_bytes += total
        return {
            "kind": self.kind,
            "index": index,
            "path": path,
            "size": total,
            "layout": [s.as_dict() for s in specs],
        }

    def resolve(self, handle: dict, *, verify: bool) -> dict:
        return attach(handle, verify=verify)

    def free(self, index: int) -> None:
        path = self._paths.pop(index, None)
        if path is not None and os.path.exists(path):
            self.stored_bytes -= os.path.getsize(path)
            os.unlink(path)

    def close(self, *, unlink: bool = True) -> None:
        if unlink:
            for index in list(self._paths):
                self.free(index)
        else:
            self._paths.clear()
        self.stored_bytes = 0


def make_provider(kind: str, *, directory: str | None = None) -> BufferProvider:
    """Construct the provider for *kind* (``mem`` / ``shm`` / ``mmap``)."""
    if kind == "mem":
        return MemoryProvider()
    if kind == "shm":
        return SharedMemoryProvider()
    if kind == "mmap":
        if not directory:
            raise StorageError("mmap storage needs a directory")
        return MmapProvider(directory)
    raise StorageError(
        f"unknown storage kind {kind!r}; choose from {PROVIDER_KINDS}"
    )


# ---------------------------------------------------------------------------
# Cross-process attach (workers call this with a pickled/JSON handle)
# ---------------------------------------------------------------------------

#: Per-process cache of attached SharedMemory segments, keyed by name.
#: A segment must stay referenced while views over it are alive; the
#: cache also spares re-attachment on every call.
_SHM_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


_ATTACH_LOCK = threading.Lock()


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    seg = _SHM_ATTACHED.get(name)
    if seg is None:
        with _ATTACH_LOCK:
            seg = _SHM_ATTACHED.get(name)
            if seg is not None:
                return seg
            # CPython < 3.13 registers even a plain attach with the
            # resource tracker, which then races the owner's unlink
            # (KeyError spam in the tracker, bogus leak warnings at
            # exit).  Only the creating process should track the
            # segment, so registration is suppressed for the attach.
            from multiprocessing import resource_tracker

            orig_register = resource_tracker.register
            resource_tracker.register = lambda *a, **kw: None
            try:
                seg = shared_memory.SharedMemory(name=name)
            except FileNotFoundError as exc:
                raise StorageError(
                    f"shared-memory segment {name!r} does not exist "
                    "(owner closed it, or the handle crossed machines)"
                ) from exc
            finally:
                resource_tracker.register = orig_register
            _SHM_ATTACHED[name] = seg
    return seg


def attach(handle: dict, *, verify: bool = True) -> dict[str, np.ndarray | bytes]:
    """Resolve a provider *handle* into field views, in any process.

    ``verify=True`` (the default, and what process workers use)
    re-hashes every field against the CRC32 recorded at store time and
    raises :class:`~repro.errors.IntegrityError` on any mismatch -- a
    poisoned shard fails loudly before its bytes reach a kernel.
    """
    kind = handle.get("kind")
    specs = [FieldSpec.from_dict(d) for d in handle["layout"]]
    if kind == "shm":
        seg = _attach_shm(handle["shm_name"])
        return _views_from_buffer(
            seg.buf,
            specs,
            verify=verify,
            context=f"shm segment {handle['shm_name']}",
        )
    if kind == "mmap":
        path = handle["path"]
        if not os.path.exists(path):
            raise StorageError(f"mmap shard file {path} does not exist")
        mm = np.memmap(path, dtype=np.uint8, mode="r")
        return _views_from_buffer(
            mm, specs, verify=verify, context=f"mmap file {path}"
        )
    if kind == "mem":
        raise StorageError(
            "memory-provider handles only resolve inside the owning "
            "process (use the provider's resolve(), or shm/mmap storage "
            "for cross-process shards)"
        )
    raise StorageError(f"unknown storage kind {kind!r} in shard handle")
