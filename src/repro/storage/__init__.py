"""Sharded storage for encoded matrices (in-memory, shm, out-of-core).

See :mod:`repro.storage.shard` for the store, :mod:`repro.storage.
provider` for the buffer backends, :mod:`repro.storage.stream` for
checkpointed out-of-core SpMV.
"""

from repro.storage.codec import CODEC_FORMATS, extract_fields, rebuild_matrix
from repro.storage.provider import (
    PROVIDER_KINDS,
    BufferProvider,
    FieldSpec,
    MemoryProvider,
    MmapProvider,
    SharedMemoryProvider,
    attach,
    make_provider,
)
from repro.storage.shard import MANIFEST_NAME, ShardStore, attach_shard
from repro.storage.stream import StreamResult, streamed_spmv

__all__ = [
    "CODEC_FORMATS",
    "extract_fields",
    "rebuild_matrix",
    "PROVIDER_KINDS",
    "BufferProvider",
    "FieldSpec",
    "MemoryProvider",
    "MmapProvider",
    "SharedMemoryProvider",
    "attach",
    "make_provider",
    "MANIFEST_NAME",
    "ShardStore",
    "attach_shard",
    "StreamResult",
    "streamed_spmv",
]
