"""ShardStore: an encoded matrix as independently-stored row-range shards.

The batched encoder and :class:`~repro.compress.encode_cache.
ConvertCache` already key conversions on ``(matrix, format, kwargs,
row_range)``; this module makes the *storage* of those per-range
encodes explicit.  A store is:

* a **partition** -- ``nshards + 1`` row boundaries (static nnz
  balancing, same scheme as the executors);
* one **shard** per range -- the encoded row-slice matrix, taken apart
  by :mod:`repro.storage.codec` and packed into a
  :class:`~repro.storage.provider.BufferProvider` buffer (in-process
  memory, POSIX shared memory, or one ``np.memmap`` file each);
* a **manifest** -- JSON-safe description of every shard (row range,
  field layout with dtypes and CRC32 seals, format metadata,
  generation counter), which for mmap storage persists to
  ``manifest.json`` so a store can be reopened later -- or by another
  process -- without the source matrix.

``attach_spec(i)`` returns a picklable dict from which *any* process
rebuilds shard ``i`` via :func:`attach_shard` -- the process backend's
transport.  ``rebuild_shard(i)`` re-encodes one shard from the source
matrix after invalidating its cache entry and bumps its generation,
which is how the cache-invalidating retry crosses process boundaries:
workers cache attached shards keyed by generation, so a rebuilt shard
is re-attached, never reused stale.

``budget_bytes`` makes the out-of-core contract enforceable: a build
whose *resident* bytes (provider-counted; mmap counts zero) would
exceed the budget raises :class:`~repro.errors.StorageError` instead
of quietly swelling the process.
"""

from __future__ import annotations

import json
import os
import time
import zlib

import numpy as np

from repro.compress.encode_cache import ConvertCache, cached_convert
from repro.errors import IntegrityError, StorageError
from repro.formats.conversions import convert, to_csr
from repro.obs import core as obs
from repro.storage.codec import extract_fields, rebuild_matrix
from repro.storage.provider import attach as provider_attach
from repro.storage.provider import make_provider
from repro.telemetry import core as telemetry

__all__ = ["ShardStore", "attach_shard", "MANIFEST_NAME", "MANIFEST_VERSION"]

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


def _manifest_crc(shards: list[dict]) -> int:
    """CRC32 seal over the canonical JSON of the shard table."""
    blob = json.dumps(shards, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(blob.encode("ascii"))


def attach_shard(spec: dict, *, verify: bool = True):
    """Rebuild one shard matrix from a picklable ``attach_spec`` dict.

    Standalone (no store object needed) so process-pool workers can
    call it with nothing but the spec.  ``verify=True`` re-hashes every
    field against its stored CRC32 and raises
    :class:`~repro.errors.IntegrityError` on mismatch -- the
    worker-side validator.
    """
    t0 = time.perf_counter()
    fields = provider_attach(spec["handle"], verify=verify)
    matrix = rebuild_matrix(fields, spec["meta"])
    telemetry.count(
        "storage.shard.attach",
        1,
        extra={"index": spec["index"], "storage": spec["handle"]["kind"]},
        format=spec["meta"]["format"],
    )
    obs.mark("storage.shard.attach", 1, storage=spec["handle"]["kind"])
    obs.observe(
        "storage.shard.attach.seconds",
        time.perf_counter() - t0,
        storage=spec["handle"]["kind"],
    )
    return matrix


class ShardStore:
    """Row-range shards of one encoded matrix behind a buffer provider.

    Build with :meth:`build` (from a resident matrix, via the convert
    cache), :meth:`build_streaming` (from a block iterator, for
    matrices that never fit in RAM), or :meth:`open` (from a persisted
    mmap manifest).  Use as a context manager; :meth:`close` releases
    every backing segment/file.
    """

    def __init__(
        self,
        *,
        provider,
        format_name: str,
        format_kwargs: dict,
        nrows: int,
        ncols: int,
        boundaries: list[int],
        shards: list[dict],
        source_csr=None,
        convert_cache: ConvertCache | None = None,
        budget_bytes: int | None = None,
    ):
        self._provider = provider
        self.format_name = format_name
        self.format_kwargs = dict(format_kwargs)
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.boundaries = [int(b) for b in boundaries]
        #: Per-shard dicts: {index, rows, generation, meta, handle}.
        self.shards = shards
        self._source_csr = source_csr
        self._cache = convert_cache
        self.budget_bytes = budget_bytes
        self._closed = False

    # -- properties --------------------------------------------------------
    @property
    def nshards(self) -> int:
        return len(self.shards)

    @property
    def storage(self) -> str:
        return self._provider.kind

    @property
    def resident_bytes(self) -> int:
        """Bytes of shard payload resident in this process (0 for mmap)."""
        return self._provider.resident_bytes

    @property
    def stored_bytes(self) -> int:
        """Total packed payload bytes across shards (any storage kind)."""
        return sum(
            sum(f["nbytes"] for f in s["handle"]["layout"]) for s in self.shards
        )

    def rows_of(self, i: int) -> tuple[int, int]:
        return self.boundaries[i], self.boundaries[i + 1]

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls,
        matrix,
        format_name: str,
        nshards: int,
        *,
        storage: str = "mem",
        directory: str | None = None,
        convert_cache: ConvertCache | None = None,
        budget_bytes: int | None = None,
        boundaries=None,
        deadline=None,
        **format_kwargs,
    ) -> "ShardStore":
        """Encode *matrix* into *nshards* row-range shards.

        Each shard's encode goes through the convert cache (keyed on
        the source matrix + row range, exactly like the executors'
        chunks, so executor and store share encodes).  ``boundaries``
        overrides the default nnz-balanced split with explicit row
        cuts -- the process executor passes its partition here so
        shards and worker chunks coincide.

        ``format_name="auto"`` asks the configuration advisor
        (:mod:`repro.perf.advisor`) to pick one format for the whole
        store from the matrix's structural features.  One format per
        store, not per shard: the manifest, fingerprints and streamed
        checkpoints all assume shard homogeneity, and a per-shard mix
        would break resume byte-identity for no modeled benefit.

        ``deadline`` (a :class:`~repro.resilience.policy.Deadline`) is
        checked between shard encodes, so a wall-clock budget set at
        ``make_executor`` also bounds the build phase: an expired
        budget raises :class:`~repro.errors.DeadlineExceeded` at a
        shard boundary instead of encoding to the bitter end.
        """
        if nshards < 1:
            raise StorageError(f"nshards must be >= 1, got {nshards}")
        csr = to_csr(matrix)
        if format_name == "auto":
            # Lazy import: the advisor sits above the storage layer.
            from repro.perf.advisor import advise_format

            format_name = advise_format(csr, threads=nshards)
        nrows, ncols = csr.shape
        if boundaries is None:
            # Imported here, not at module level: repro.parallel's
            # process backend imports this module, and importing the
            # partition helpers pulls in the whole parallel package.
            from repro.parallel.partition import balance_by_nnz

            boundaries = balance_by_nnz(csr.row_ptr, nshards).tolist()
        else:
            boundaries = [int(b) for b in boundaries]
            if len(boundaries) != nshards + 1:
                raise StorageError(
                    f"boundaries has {len(boundaries)} entries, expected "
                    f"nshards+1={nshards + 1}"
                )
        provider = make_provider(storage, directory=directory)
        store = cls(
            provider=provider,
            format_name=format_name,
            format_kwargs=format_kwargs,
            nrows=nrows,
            ncols=ncols,
            boundaries=boundaries,
            shards=[],
            source_csr=csr,
            convert_cache=convert_cache,
            budget_bytes=budget_bytes,
        )
        try:
            for i in range(nshards):
                if deadline is not None:
                    deadline.check("storage.build")
                lo, hi = boundaries[i], boundaries[i + 1]
                encoded = cached_convert(
                    csr,
                    format_name,
                    rows=(lo, hi),
                    cache=convert_cache,
                    **format_kwargs,
                )
                store._store_shard(i, (lo, hi), encoded)
        except BaseException:
            store.close()
            raise
        if storage == "mmap":
            store.save_manifest()
        return store

    @classmethod
    def build_streaming(
        cls,
        blocks,
        format_name: str,
        *,
        ncols: int,
        storage: str = "mmap",
        directory: str | None = None,
        budget_bytes: int | None = None,
        **format_kwargs,
    ) -> "ShardStore":
        """Build from an iterator of ``(lo, hi, csr_block)`` row blocks.

        The out-of-core entry point: blocks are encoded and spilled one
        at a time, so peak residency is one block plus its encode --
        the full matrix never exists in memory.  Blocks must be
        contiguous from row 0 and each ``csr_block`` spans rows
        ``[lo, hi)`` with the full column width.
        """
        provider = make_provider(storage, directory=directory)
        store = cls(
            provider=provider,
            format_name=format_name,
            format_kwargs=format_kwargs,
            nrows=0,
            ncols=int(ncols),
            boundaries=[0],
            shards=[],
            source_csr=None,
            budget_bytes=budget_bytes,
        )
        try:
            for i, (lo, hi, block) in enumerate(blocks):
                if lo != store.boundaries[-1]:
                    raise StorageError(
                        f"streamed block {i} starts at row {lo}, expected "
                        f"{store.boundaries[-1]} (blocks must be contiguous)"
                    )
                if block.shape != (hi - lo, ncols):
                    raise StorageError(
                        f"streamed block {i} has shape {block.shape}, "
                        f"expected ({hi - lo}, {ncols})"
                    )
                encoded = convert(to_csr(block), format_name, **format_kwargs)
                store.boundaries.append(hi)
                store.nrows = hi
                store._store_shard(i, (lo, hi), encoded)
        except BaseException:
            store.close()
            raise
        if storage == "mmap":
            store.save_manifest()
        return store

    @classmethod
    def open(cls, directory: str) -> "ShardStore":
        """Reopen a persisted mmap store from its ``manifest.json``.

        The manifest's own CRC32 seal is checked here; each shard's
        field CRCs are checked lazily at attach time.  A reopened store
        has no source matrix, so :meth:`rebuild_shard` is unavailable.
        """
        path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(path, "r", encoding="ascii") as fh:
                doc = json.load(fh)
        except FileNotFoundError as exc:
            raise StorageError(f"no {MANIFEST_NAME} in {directory}") from exc
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"unreadable manifest {path}: {exc}") from exc
        if doc.get("version") != MANIFEST_VERSION:
            raise StorageError(
                f"manifest version {doc.get('version')!r} is not "
                f"{MANIFEST_VERSION}"
            )
        if _manifest_crc(doc["shards"]) != doc.get("crc32"):
            raise IntegrityError(
                f"manifest {path} failed its CRC32 seal: shard table "
                "changed since it was written"
            )
        provider = make_provider("mmap", directory=directory)
        # Re-point shard files at this directory (the store may have
        # been moved wholesale).
        shards = doc["shards"]
        for s in shards:
            s["handle"]["path"] = os.path.join(
                directory, os.path.basename(s["handle"]["path"])
            )
            if not os.path.exists(s["handle"]["path"]):
                raise StorageError(
                    f"manifest names missing shard file {s['handle']['path']}"
                )
            provider._paths[s["index"]] = s["handle"]["path"]
            provider.stored_bytes += os.path.getsize(s["handle"]["path"])
        return cls(
            provider=provider,
            format_name=doc["format"],
            format_kwargs=doc.get("format_kwargs", {}),
            nrows=doc["nrows"],
            ncols=doc["ncols"],
            boundaries=doc["boundaries"],
            shards=shards,
        )

    def save_manifest(self) -> str:
        """Write ``manifest.json`` next to the shard files (mmap only)."""
        if self.storage != "mmap":
            raise StorageError(
                f"only mmap stores persist a manifest (this one is "
                f"{self.storage!r})"
            )
        doc = {
            "version": MANIFEST_VERSION,
            "format": self.format_name,
            "format_kwargs": self.format_kwargs,
            "nrows": self.nrows,
            "ncols": self.ncols,
            "boundaries": self.boundaries,
            "shards": self.shards,
            "crc32": _manifest_crc(self.shards),
        }
        path = os.path.join(self._provider.directory, MANIFEST_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="ascii") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    # -- shard plumbing ----------------------------------------------------
    def _store_shard(self, i: int, rows: tuple[int, int], encoded) -> None:
        fields, meta = extract_fields(encoded)
        handle = self._provider.store(i, fields)
        nbytes = sum(f["nbytes"] for f in handle["layout"])
        spec = {
            "index": i,
            "rows": [rows[0], rows[1]],
            "generation": (
                self.shards[i]["generation"] + 1 if i < len(self.shards) else 0
            ),
            "meta": meta,
            "handle": handle,
        }
        if i < len(self.shards):
            self.shards[i] = spec
        else:
            self.shards.append(spec)
        telemetry.count(
            "storage.shard.write",
            1,
            extra={"index": i, "bytes": nbytes, "storage": self.storage},
            format=self.format_name,
        )
        obs.mark("storage.shard.write", 1, storage=self.storage)
        if self.budget_bytes is not None and self.resident_bytes > self.budget_bytes:
            raise StorageError(
                f"shard build exceeded budget_bytes={self.budget_bytes}: "
                f"{self.resident_bytes} bytes resident after shard {i} "
                f"under {self.storage!r} storage (use storage='mmap' to "
                "keep shards out of core)"
            )

    def attach_spec(self, i: int) -> dict:
        """Picklable description of shard *i* for cross-process attach."""
        self._check_index(i)
        return self.shards[i]

    def attach(self, i: int, *, verify: bool = True):
        """Shard *i* rebuilt as a matrix in this process."""
        self._check_index(i)
        t0 = time.perf_counter()
        spec = self.shards[i]
        fields = self._provider.resolve(spec["handle"], verify=verify)
        matrix = rebuild_matrix(fields, spec["meta"])
        telemetry.count(
            "storage.shard.attach",
            1,
            extra={"index": i, "storage": self.storage},
            format=self.format_name,
        )
        obs.mark("storage.shard.attach", 1, storage=self.storage)
        obs.observe(
            "storage.shard.attach.seconds",
            time.perf_counter() - t0,
            storage=self.storage,
        )
        return matrix

    def rebuild_shard(self, i: int) -> dict:
        """Re-encode shard *i* from the source matrix; new generation.

        The cross-process analogue of the thread executor's
        ``_rebuild_chunk``: the cached encode is invalidated, the shard
        re-encoded and re-stored (fresh shm segment / rewritten file),
        and the bumped ``generation`` forces workers holding the old
        spec to re-attach.
        """
        self._check_index(i)
        if self._source_csr is None:
            raise StorageError(
                f"shard {i} cannot be rebuilt: this store has no source "
                "matrix (opened from a manifest or streamed)"
            )
        t0 = time.perf_counter()
        lo, hi = self.rows_of(i)
        from repro.compress.encode_cache import DEFAULT_CACHE

        cache = self._cache if self._cache is not None else DEFAULT_CACHE
        cache.invalidate(
            self._source_csr,
            self.format_name,
            rows=(lo, hi),
            **self.format_kwargs,
        )
        encoded = cached_convert(
            self._source_csr,
            self.format_name,
            rows=(lo, hi),
            cache=cache,
            **self.format_kwargs,
        )
        self._store_shard(i, (lo, hi), encoded)
        if self.storage == "mmap":
            self.save_manifest()
        obs.observe(
            "storage.shard.rebuild.seconds",
            time.perf_counter() - t0,
            storage=self.storage,
        )
        return self.shards[i]

    def _check_index(self, i: int) -> None:
        if self._closed:
            raise StorageError("shard store is closed")
        if not 0 <= i < len(self.shards):
            raise StorageError(
                f"shard index {i} out of range (store has {len(self.shards)})"
            )

    # -- lifecycle ---------------------------------------------------------
    def close(self, *, unlink: bool = True) -> None:
        """Release every backing segment/file (idempotent).

        ``unlink=False`` keeps mmap files (and their manifest) on disk
        for a later :meth:`open`; shm segments are always unlinked --
        an orphaned segment outlives the process and leaks kernel
        memory.
        """
        if self._closed:
            return
        self._provider.close(unlink=unlink)
        self._closed = True

    def __enter__(self) -> "ShardStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
