"""Streamed (out-of-core) SpMV over a shard store, with checkpoints.

One shard is attached, multiplied, and released at a time, so the
resident working set is a single shard's arrays plus ``x`` and the
active ``y`` slice -- a matrix far larger than RAM streams through a
fixed budget.  With a checkpoint directory the partial ``y`` lives in
an on-disk ``.npy`` memmap and a small fsync'd progress record is
written after every shard, so an interrupted run resumes from the last
completed shard instead of row 0.

The progress record carries a fingerprint (store identity + ``x``
CRC32); :func:`streamed_spmv` refuses to resume a checkpoint written
for a different matrix or input vector -- silently mixing partial
results would be bit-exact garbage.

Shard-format selection lives in :meth:`repro.storage.shard.ShardStore.
build`, which accepts ``format_name="auto"`` (the configuration
advisor picks one format for the whole store); a stream over an
auto-built store is bit-identical to one over the same format chosen
explicitly, because by the time the stream runs the store *is* that
explicit format.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError, StorageError
from repro.obs import core as obs
from repro.obs.resource import rss_bytes
from repro.resilience import chaos
from repro.resilience.policy import DEFAULT_RETRY_POLICY, Deadline, RetryPolicy
from repro.telemetry import core as telemetry

__all__ = ["StreamResult", "streamed_spmv", "PROGRESS_NAME", "Y_PARTIAL_NAME"]

PROGRESS_NAME = "progress.json"
Y_PARTIAL_NAME = "y.partial.npy"


@dataclass(frozen=True)
class StreamResult:
    """Outcome of one :func:`streamed_spmv` run."""

    #: The full product vector (an on-disk memmap when checkpointed).
    y: np.ndarray
    #: Shards multiplied in *this* run (excludes resumed ones).
    shards_done: int
    #: Shard index the run resumed from (0 = fresh run).
    resumed_from: int
    #: Highest resident-set size observed between shards, in bytes.
    peak_rss_bytes: int


def _fingerprint(store, x: np.ndarray) -> str:
    """Identity of (store, x) a checkpoint must match to be resumable."""
    shard_crcs = [
        (s["index"], [f["crc32"] for f in s["handle"]["layout"]])
        for s in store.shards
    ]
    blob = json.dumps(
        {
            "format": store.format_name,
            "nrows": store.nrows,
            "ncols": store.ncols,
            "boundaries": store.boundaries,
            "shards": shard_crcs,
            "x_crc32": zlib.crc32(np.ascontiguousarray(x).tobytes()),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return f"{zlib.crc32(blob.encode('ascii')):08x}"


def _write_progress(path: str, doc: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="ascii") as fh:
        json.dump(doc, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def streamed_spmv(
    store,
    x: np.ndarray,
    *,
    checkpoint_dir: str | None = None,
    verify: bool = True,
    retry_policy: RetryPolicy | None = None,
    deadline: Deadline | None = None,
) -> StreamResult:
    """Compute ``y = A x`` one shard at a time.

    Parameters
    ----------
    store:
        A :class:`~repro.storage.shard.ShardStore` (any storage kind;
        mmap is the out-of-core case this exists for).
    x:
        Dense input vector of length ``store.ncols``.
    checkpoint_dir:
        When given, ``y`` is an on-disk memmap in this directory and
        progress is recorded after every shard; a matching progress
        record already present resumes the run from where it stopped.
    verify:
        Forwarded to shard attach: CRC-check every field (default on).
    retry_policy:
        :class:`~repro.resilience.policy.RetryPolicy` for per-shard
        failures.  The default retries a decode-class failure (CRC
        mismatch at attach, malformed ctl at multiply) once after
        rebuilding the shard from the store's source matrix; a store
        with no source (reopened from a manifest) fails with a typed
        :class:`~repro.errors.StorageError` instead.
    deadline:
        Optional wall-clock :class:`~repro.resilience.policy.Deadline`
        for the whole stream, checked at every shard boundary; expiry
        raises :class:`~repro.errors.DeadlineExceeded` *after* the
        last completed shard was checkpointed, so a later run resumes
        cleanly.
    """
    policy = DEFAULT_RETRY_POLICY if retry_policy is None else retry_policy
    retry_budget = policy.new_budget()
    retry_rng = policy.new_rng()
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (store.ncols,):
        raise FormatError(f"x has shape {x.shape}, expected ({store.ncols},)")

    resumed_from = 0
    progress_path = None
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
        progress_path = os.path.join(checkpoint_dir, PROGRESS_NAME)
        y_path = os.path.join(checkpoint_dir, Y_PARTIAL_NAME)
        fingerprint = _fingerprint(store, x)
        if os.path.exists(progress_path) and os.path.exists(y_path):
            try:
                with open(progress_path, "r", encoding="ascii") as fh:
                    progress = json.load(fh)
            except (OSError, json.JSONDecodeError) as exc:
                raise StorageError(
                    f"unreadable stream checkpoint {progress_path}: {exc}"
                ) from exc
            if progress.get("fingerprint") != fingerprint:
                raise StorageError(
                    f"checkpoint in {checkpoint_dir} belongs to a "
                    "different (matrix, x) pair; remove it or use a "
                    "fresh directory"
                )
            resumed_from = int(progress.get("shards_done", 0))
            y = np.lib.format.open_memmap(y_path, mode="r+")
            if y.shape != (store.nrows,):
                raise StorageError(
                    f"checkpointed y has shape {y.shape}, expected "
                    f"({store.nrows},)"
                )
        else:
            y = np.lib.format.open_memmap(
                y_path, mode="w+", dtype=np.float64, shape=(store.nrows,)
            )
    else:
        y = np.empty(store.nrows, dtype=np.float64)

    peak_rss = 0
    done_this_run = 0
    with telemetry.span(
        "storage.stream", shards=store.nshards, resumed_from=resumed_from
    ):
        for i in range(resumed_from, store.nshards):
            if deadline is not None:
                deadline.check("stream.shard")
            lo, hi = store.rows_of(i)

            def shard_pass(_target, i=i, lo=lo, hi=hi) -> None:
                chaos.trip(
                    "stream.shard",
                    shard=i,
                    generation=store.shards[i]["generation"],
                )
                shard = store.attach(i, verify=verify)
                shard.spmv(x, out=y[lo:hi])
                # Drop the shard before sampling so the measured peak
                # is the streaming working set, not dead views.
                del shard

            def on_retry(exc: BaseException, attempt: int, i=i, lo=lo, hi=hi):
                telemetry.count(
                    "executor.retry",
                    1,
                    extra={
                        "thread": i,
                        "lo": lo,
                        "hi": hi,
                        "error": type(exc).__name__,
                    },
                    format=store.format_name,
                )
                obs.mark("executor.retry", 1, format=store.format_name)

            policy.run(
                shard_pass,
                rebuild=lambda i=i: store.rebuild_shard(i),
                budget=retry_budget,
                deadline=deadline,
                rng=retry_rng,
                on_retry=on_retry,
            )
            done_this_run += 1
            rss, _is_peak = rss_bytes()
            peak_rss = max(peak_rss, rss)
            if progress_path is not None:
                ckpt_t0 = time.perf_counter()
                y.flush()
                # Chaos seam: the torn-checkpoint window.  The y
                # partial for shard i is durable but progress.json
                # still says i-1; a kill here must resume to a
                # bit-identical y (shard i is simply recomputed).
                chaos.trip("stream.checkpoint", shard=i)
                _write_progress(
                    progress_path,
                    {"fingerprint": fingerprint, "shards_done": i + 1},
                )
                # Checkpoint write lag: the fsync'd progress record plus
                # the y flush -- the per-shard durability cost.
                obs.observe(
                    "storage.checkpoint.write.seconds",
                    time.perf_counter() - ckpt_t0,
                    storage=store.storage,
                )
                telemetry.count(
                    "storage.stream.checkpoint",
                    1,
                    extra={"shard": i, "rows_done": hi},
                    format=store.format_name,
                )
                obs.mark("storage.stream.checkpoint", 1, storage=store.storage)
    obs.set_gauge("storage.stream.peak_rss_bytes", float(peak_rss))
    return StreamResult(
        y=y,
        shards_done=done_this_run,
        resumed_from=resumed_from,
        peak_rss_bytes=peak_rss,
    )
