"""Chaos harness: inject faults, demand bit-identical recovery or typed failure.

Every scenario arms one fault through :mod:`repro.resilience.chaos`,
drives a real executor / stream through it, and asserts the resilience
contract: the run either **recovers to a bit-identical result** (same
bytes as a fault-free run of the same configuration) or fails with a
**typed** :class:`~repro.errors.ExecutionError` /
:class:`~repro.errors.StorageError` family exception -- never a hang,
never a silently wrong answer.  Telemetry is scoped per scenario and
every emitted event must validate against the documented schema, so
the recovery machinery stays observable while it works.

Scenarios (the fault sweep):

==================  =======================================================
``worker-kill``     SIGKILL a pool worker mid-chunk -> typed ExecutionError
                    (dead worker), then a bit-identical recovery call
``straggler``       one worker sleeps past ``chunk_timeout`` ->
                    ``executor.chunk.abandoned`` + typed TimeoutError
                    failure, then bit-identical recovery
``shard-corrupt``   decode fault pinned to (shard 0, generation 0) ->
                    rebuild bumps the generation, same call returns the
                    bit-identical answer with exactly one retry
``breaker-open``    persistent shard fault + no-retry policy -> the
                    per-(shard, generation) breaker opens after 3
                    failures; further calls fail fast with a typed
                    BreakerOpenError instead of burning attempts
``mmap-truncate``   a shard file truncated on disk -> CRC failure at
                    attach, parent rebuild rewrites the file, call
                    returns bit-identical
``degrade-ladder``  every process-rung chunk poisoned -> the
                    ResilientExecutor degrades to the thread rung,
                    answers bit-identically, and the ``backend-degraded``
                    SLO rule fires on the obs snapshot
``deadline``        an expired wall-clock Deadline -> typed
                    DeadlineExceeded before any work runs
``torn-checkpoint`` a subprocess streaming over an mmap store is
                    SIGKILLed between shard 1's y-partial flush and its
                    progress.json write; the resumed run recomputes the
                    torn shard and produces a bit-identical y
==================  =======================================================

Fork caveat: the kill/sleep/raise faults reach pool workers by fork
inheritance, so scenarios that need worker-side faults are skipped on
platforms without the fork start method.

Run:  PYTHONPATH=src python tools/smoke_chaos.py [--smoke] [--events PATH]
      [--only NAME]

``--smoke`` runs the sweep once at the small size (the CI entry);
without it the data-fault scenarios run a second pass at a larger
matrix / worker count.  ``--events`` appends every scenario's validated
telemetry events to a JSONL log (the CI artifact).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import multiprocessing
import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

import repro
from repro import telemetry
from repro.errors import (
    BreakerOpenError,
    DeadlineExceeded,
    EncodingError,
    ExecutionError,
    TelemetryError,
)
from repro.formats.csr import CSRMatrix
from repro.parallel.process_executor import ProcessParallelSpMV
from repro.resilience import chaos
from repro.resilience.degrade import ResilientExecutor
from repro.resilience.policy import Deadline, RetryPolicy
from repro.telemetry.export import validate_event
from repro.telemetry.metrics import KNOWN_EVENTS

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


class ChaosFailure(AssertionError):
    """A scenario violated the resilience contract."""


def _matrix(n: int, seed: int) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < 0.1) * rng.random((n, n))
    return CSRMatrix.from_dense(dense)


def _events() -> list[dict]:
    return [
        dataclasses.asdict(ev) for ev in telemetry.get_collector().snapshot()
    ]


def _named(events: list[dict], name: str) -> list[dict]:
    return [e for e in events if e["name"] == name]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ChaosFailure(message)


def _corrupt() -> EncodingError:
    return EncodingError("chaos: shard bytes corrupted")


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


def scenario_worker_kill(n: int = 96, nworkers: int = 2) -> str:
    csr = _matrix(n, seed=11)
    x = np.random.default_rng(2).random(n)
    with ProcessParallelSpMV(csr, nworkers, format_name="csr") as clean:
        expected = clean(x)
    chaos.arm("worker.chunk", "kill", match={"index": 1}, tag="worker-kill")
    with ProcessParallelSpMV(csr, nworkers, format_name="csr") as ex:
        try:
            ex(x)
        except DeadlineExceeded:
            raise ChaosFailure("worker kill misreported as DeadlineExceeded")
        except ExecutionError as exc:
            _require(
                len(exc.failures) >= 1,
                "worker kill produced an ExecutionError with no failures",
            )
        else:
            raise ChaosFailure("SIGKILLed worker did not fail the call")
        # Disarm before the recovery call: the rotated pool forks fresh
        # from this parent, so a still-armed kill would fire again.
        chaos.disarm_all()
        got = ex(x)
    _require(
        np.array_equal(got, expected),
        "recovery call after a worker kill is not bit-identical",
    )
    return "typed failure, bit-identical recovery after pool rotation"


def scenario_straggler(n: int = 96, nworkers: int = 2) -> str:
    csr = _matrix(n, seed=13)
    x = np.random.default_rng(3).random(n)
    with ProcessParallelSpMV(csr, nworkers, format_name="csr") as clean:
        expected = clean(x)
    chaos.arm(
        "worker.chunk",
        "sleep",
        match={"index": 0},
        sleep_s=2.0,
        tag="straggler",
    )
    with ProcessParallelSpMV(
        csr, nworkers, format_name="csr", chunk_timeout=0.25
    ) as ex:
        try:
            ex(x)
        except ExecutionError as exc:
            _require(
                any(isinstance(f.error, TimeoutError) for f in exc.failures),
                f"straggler failure is not a TimeoutError: {exc}",
            )
        else:
            raise ChaosFailure("straggler did not trip chunk_timeout")
        chaos.disarm_all()
        got = ex(x)
    _require(
        np.array_equal(got, expected),
        "recovery call after a straggler is not bit-identical",
    )
    abandoned = _named(_events(), "executor.chunk.abandoned")
    _require(
        len(abandoned) == 1,
        f"expected 1 executor.chunk.abandoned event, got {len(abandoned)}",
    )
    return "abandoned chunk marked, bit-identical recovery"


def scenario_shard_corrupt(n: int = 96, nworkers: int = 2) -> str:
    csr = _matrix(n, seed=17)
    x = np.random.default_rng(5).random(n)
    with ProcessParallelSpMV(csr, nworkers, format_name="csr-du") as clean:
        expected = clean(x)
    # Pinned to generation 0: the rebuild bumps the generation, so the
    # fault stops matching and the resubmit sees clean bytes -- exactly
    # how a one-off corruption between generations should converge.
    chaos.arm(
        "worker.chunk",
        "raise",
        match={"index": 0, "generation": 0},
        exc_factory=_corrupt,
        tag="shard-corrupt",
    )
    with ProcessParallelSpMV(csr, nworkers, format_name="csr-du") as ex:
        got = ex(x)
    _require(
        np.array_equal(got, expected),
        "post-rebuild result is not bit-identical",
    )
    retries = _named(_events(), "executor.retry")
    _require(
        len(retries) == 1,
        f"expected exactly 1 executor.retry, got {len(retries)}",
    )
    return "rebuilt shard generation, bit-identical, 1 retry"


def scenario_breaker_open(n: int = 96, nworkers: int = 2) -> str:
    csr = _matrix(n, seed=19)
    x = np.random.default_rng(7).random(n)
    # Persistent fault + a policy that never retries: the shard's
    # generation never advances, so its breaker accumulates failures.
    chaos.arm(
        "worker.chunk",
        "raise",
        match={"index": 0},
        times=1000,
        exc_factory=_corrupt,
        tag="breaker-open",
    )
    with ProcessParallelSpMV(
        csr,
        nworkers,
        format_name="csr",
        retry_policy=RetryPolicy(max_attempts=1, budget=0),
        breaker_threshold=3,
    ) as ex:
        last: ExecutionError | None = None
        for _ in range(3):
            try:
                ex(x)
            except ExecutionError as exc:
                last = exc
            else:
                raise ChaosFailure("persistent shard fault did not fail")
    _require(
        last is not None
        and any(isinstance(f.error, BreakerOpenError) for f in last.failures),
        f"third call did not surface a BreakerOpenError: {last}",
    )
    opens = _named(_events(), "resilience.breaker.open")
    _require(
        len(opens) == 1,
        f"expected 1 resilience.breaker.open event, got {len(opens)}",
    )
    return "breaker opened after 3 failures, typed BreakerOpenError"


def scenario_mmap_truncate(n: int = 96, nworkers: int = 2) -> str:
    csr = _matrix(n, seed=23)
    x = np.random.default_rng(9).random(n)
    with tempfile.TemporaryDirectory(prefix="chaos-clean-") as tmp:
        with ProcessParallelSpMV(
            csr, nworkers, format_name="csr", storage="mmap", directory=tmp
        ) as clean:
            expected = clean(x)
    with tempfile.TemporaryDirectory(prefix="chaos-mmap-") as tmp:
        with ProcessParallelSpMV(
            csr, nworkers, format_name="csr", storage="mmap", directory=tmp
        ) as ex:
            path = ex.store.shards[0]["handle"]["path"]
            os.truncate(path, os.path.getsize(path) // 2)
            got = ex(x)
        _require(
            np.array_equal(got, expected),
            "post-truncation rebuild is not bit-identical",
        )
    retries = _named(_events(), "executor.retry")
    _require(
        len(retries) == 1,
        f"expected exactly 1 executor.retry, got {len(retries)}",
    )
    return "truncated shard file rebuilt, bit-identical, 1 retry"


def scenario_degrade_ladder(n: int = 96, nworkers: int = 2) -> str:
    from repro import obs
    from repro.obs.rules import default_rules
    from repro.parallel.executor import ParallelSpMV

    csr = _matrix(n, seed=29)
    x = np.random.default_rng(13).random(n)
    with ParallelSpMV(csr, nworkers, format_name="csr") as clean:
        expected = clean(x)
    # Every generation of every shard is poisoned: the process rung
    # cannot recover in place, so the ladder must step down to threads.
    chaos.arm(
        "worker.chunk",
        "raise",
        match={},
        times=10**6,
        exc_factory=_corrupt,
        tag="degrade-ladder",
    )
    runtime = obs.ObsRuntime(rules=default_rules())
    prev_runtime = obs.set_runtime(runtime)
    try:
        with ResilientExecutor(
            csr, nworkers, backend="process", storage="mem", format_name="csr"
        ) as rex:
            got = rex(x)
            rung = rex.active_rung
        runtime.flush_snapshot()
        alerts = [a.rule for a in runtime.alerts]
        exposition = runtime.render_openmetrics()
    finally:
        obs.set_runtime(prev_runtime)
        runtime.close()
    _require(
        np.array_equal(got, expected),
        "degraded (thread-rung) result is not bit-identical",
    )
    _require(
        rung == ("thread", "mem"),
        f"expected active rung ('thread', 'mem'), got {rung}",
    )
    degrades = _named(_events(), "resilience.degrade")
    _require(bool(degrades), "no resilience.degrade telemetry emitted")
    _require(
        "backend-degraded" in alerts,
        f"backend-degraded SLO rule did not fire (alerts: {alerts})",
    )
    _require(
        "resilience_degrade_total" in exposition,
        "OpenMetrics exposition lacks resilience_degrade_total",
    )
    return "degraded process->thread, bit-identical, SLO rule fired"


def scenario_deadline(n: int = 96, nworkers: int = 2) -> str:
    from repro.parallel.backends import make_executor

    csr = _matrix(n, seed=31)
    x = np.random.default_rng(17).random(n)
    deadline = Deadline.after(0.05)
    with make_executor(
        csr, nworkers, backend="thread", format_name="csr", deadline=deadline
    ) as ex:
        time.sleep(0.06)
        try:
            ex(x)
        except DeadlineExceeded as exc:
            _require(
                exc.label == "parallel.call",
                f"deadline expired at {exc.label!r}, not 'parallel.call'",
            )
        else:
            raise ChaosFailure("expired deadline did not raise")
    expired = _named(_events(), "resilience.deadline.expired")
    _require(
        len(expired) == 1,
        f"expected 1 resilience.deadline.expired event, got {len(expired)}",
    )
    return "typed DeadlineExceeded before any work ran"


_CHILD_SCRIPT = """
import numpy as np
from repro.resilience import chaos
from repro.storage.shard import ShardStore
from repro.storage.stream import streamed_spmv

store = ShardStore.open({store_dir!r})
x = np.random.default_rng(19).random(store.ncols)
chaos.arm("stream.checkpoint", "kill", match={{"shard": 1}})
streamed_spmv(store, x, checkpoint_dir={ckpt_dir!r})
raise SystemExit("chaos kill did not fire")
"""


def scenario_torn_checkpoint(n: int = 120, nshards: int = 3) -> str:
    from repro.storage.shard import ShardStore
    from repro.storage.stream import PROGRESS_NAME, streamed_spmv

    csr = _matrix(n, seed=37)
    x = np.random.default_rng(19).random(n)
    expected = csr.spmv(x)
    with tempfile.TemporaryDirectory(prefix="chaos-torn-") as tmp:
        store_dir = os.path.join(tmp, "store")
        ckpt_dir = os.path.join(tmp, "ckpt")
        os.makedirs(store_dir)
        build = ShardStore.build(
            csr, "csr", nshards, storage="mmap", directory=store_dir
        )
        build.save_manifest()
        build.close(unlink=False)
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                _CHILD_SCRIPT.format(store_dir=store_dir, ckpt_dir=ckpt_dir),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        _require(
            proc.returncode == -signal.SIGKILL,
            f"child exited {proc.returncode}, wanted -SIGKILL "
            f"(stderr: {proc.stderr[-500:]})",
        )
        with open(os.path.join(ckpt_dir, PROGRESS_NAME), encoding="ascii") as fh:
            progress = json.load(fh)
        _require(
            progress["shards_done"] == 1,
            f"torn checkpoint records shards_done={progress['shards_done']}, "
            "wanted 1 (y ahead of progress)",
        )
        store = ShardStore.open(store_dir)
        try:
            result = streamed_spmv(store, x, checkpoint_dir=ckpt_dir)
            _require(
                result.resumed_from == 1,
                f"resume started at shard {result.resumed_from}, wanted 1",
            )
            _require(
                np.array_equal(np.asarray(result.y), expected),
                "resumed streamed y is not bit-identical",
            )
        finally:
            store.close(unlink=False)
    return "killed mid-checkpoint, resumed from shard 1, bit-identical"


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

#: (name, callable, needs_fork): the full sweep, in run order.
SCENARIOS: tuple[tuple[str, object, bool], ...] = (
    ("worker-kill", scenario_worker_kill, True),
    ("straggler", scenario_straggler, True),
    ("shard-corrupt", scenario_shard_corrupt, True),
    ("breaker-open", scenario_breaker_open, True),
    ("mmap-truncate", scenario_mmap_truncate, False),
    ("degrade-ladder", scenario_degrade_ladder, True),
    ("deadline", scenario_deadline, False),
    ("torn-checkpoint", scenario_torn_checkpoint, False),
)

#: Data-fault scenarios the full (non --smoke) sweep re-runs larger.
_SECOND_PASS = ("shard-corrupt", "mmap-truncate", "degrade-ladder")


def run_scenario(name: str, fn, event_log: list[dict], **kwargs) -> int:
    prev = telemetry.set_collector(telemetry.Collector())
    try:
        summary = fn(**kwargs)
        events = _events()
    except ChaosFailure as exc:
        print(f"smoke_chaos: {name} FAILED: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
        print(
            f"smoke_chaos: {name} ERRORED: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 1
    finally:
        chaos.disarm_all()
        telemetry.set_collector(prev)
    for i, event in enumerate(events):
        try:
            validate_event(event)
        except TelemetryError as exc:
            print(
                f"smoke_chaos: {name} event {i} invalid: {exc}: {event!r}",
                file=sys.stderr,
            )
            return 1
    unknown = {e["name"] for e in events} - KNOWN_EVENTS
    if unknown:
        print(
            f"smoke_chaos: {name} emitted undocumented events "
            f"{sorted(unknown)}",
            file=sys.stderr,
        )
        return 1
    event_log.extend(events)
    print(f"smoke_chaos: {name} OK ({summary}; {len(events)} events)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single small pass of every scenario (the CI entry)",
    )
    parser.add_argument(
        "--events",
        type=str,
        default=None,
        metavar="PATH",
        help="write every scenario's telemetry events as JSONL",
    )
    parser.add_argument(
        "--only",
        type=str,
        default=None,
        help="run just this scenario (by name)",
    )
    args = parser.parse_args(argv)

    names = {name for name, _, _ in SCENARIOS}
    if args.only is not None and args.only not in names:
        parser.error(f"unknown scenario {args.only!r}; choose from {sorted(names)}")

    event_log: list[dict] = []
    failures = 0
    ran = 0
    for name, fn, needs_fork in SCENARIOS:
        if args.only is not None and name != args.only:
            continue
        if needs_fork and not _HAS_FORK:
            print(f"smoke_chaos: {name} SKIPPED (no fork start method)")
            continue
        failures += run_scenario(name, fn, event_log)
        ran += 1
        if not args.smoke and args.only is None and name in _SECOND_PASS:
            failures += run_scenario(
                f"{name}@160x4", fn, event_log, n=160, nworkers=4
            )
            ran += 1
    if args.events:
        with open(args.events, "w", encoding="utf-8") as fh:
            for event in event_log:
                fh.write(json.dumps(event) + "\n")
        print(
            f"smoke_chaos: wrote {len(event_log)} events to {args.events}"
        )
    if ran == 0:
        print("smoke_chaos: no scenarios ran", file=sys.stderr)
        return 1
    if failures:
        print(f"smoke_chaos: {failures} scenario(s) failed", file=sys.stderr)
        return 1
    print(f"smoke_chaos: all {ran} scenario runs passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
