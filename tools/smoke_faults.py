"""Fault-injection smoke check: no silent wrong answer, ever.

Sweeps the seeded fault catalogue (:mod:`repro.robust.inject`) over
every compressed paper format and asserts the integrity contract:

* every **must-catch** corruption of a *sealed* matrix is caught by
  ``verify()`` (:class:`~repro.errors.IntegrityError` or a decode
  error);
* every **structural** corruption is caught even *without* a seal;
* any corruption ``verify()`` does not catch must still be harmless:
  the corrupted matrix's ``y = A x`` either raises during the kernel
  or is bit-identical to the uncorrupted matrix's — a fault that
  changes ``y`` without tripping any check is a **silent wrong
  answer**, and exactly one of those fails this tool.

The sweep is fully deterministic (seeded generators end to end), so a
CI failure here reproduces locally byte for byte.

Run:  PYTHONPATH=src python tools/smoke_faults.py [--seeds 5] [--size 64]
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.errors import ReproError
from repro.formats.conversions import convert
from repro.formats.csr import CSRMatrix
from repro.robust import FaultNotApplicable, applicable_faults, inject, seal

#: Compressed formats the adversarial sweep targets.
FORMATS = ("csr", "csr-vi", "csr-du", "csr-du-vi")


def _build_matrix(size: int) -> CSRMatrix:
    """A deterministic test matrix with repeated values (CSR-VI bait)."""
    rng = np.random.default_rng(42)
    dense = (rng.random((size, size)) < 0.12) * np.round(
        rng.random((size, size)), 2
    )
    # An empty row exercises the RJMP path of the ctl stream.
    dense[size // 2, :] = 0.0
    return CSRMatrix.from_dense(dense)


def run(*, seeds: int = 5, size: int = 64) -> int:
    """Run the sweep; 0 when the contract holds everywhere."""
    csr = _build_matrix(size)
    rng = np.random.default_rng(7)
    x = rng.random(csr.ncols)
    violations = 0
    caught = silent_ok = injected = skipped = 0

    for fmt in FORMATS:
        healthy = convert(csr, fmt)
        y_ref = healthy.spmv(x)
        seal(healthy)
        healthy.verify()
        for fault in applicable_faults(fmt):
            for seed_n in range(seeds):
                try:
                    victim = inject(healthy, fault, seed_n)
                except FaultNotApplicable:
                    skipped += 1
                    continue
                injected += 1
                try:
                    victim.verify()
                    verified = True
                except ReproError:
                    verified = False
                    caught += 1
                if verified and fault.must_catch:
                    print(
                        f"smoke_faults: MUST-CATCH MISSED: {fmt} / "
                        f"{fault.name} seed {seed_n} passed verify() on a "
                        "sealed matrix",
                        file=sys.stderr,
                    )
                    violations += 1
                    continue
                if verified:
                    # Not caught: the fault must then be harmless.
                    try:
                        y = victim.spmv(x)
                    except ReproError:
                        caught += 1
                        continue
                    if np.array_equal(y, y_ref):
                        silent_ok += 1
                    else:
                        print(
                            f"smoke_faults: SILENT WRONG ANSWER: {fmt} / "
                            f"{fault.name} seed {seed_n} changed y without "
                            "tripping any check",
                            file=sys.stderr,
                        )
                        violations += 1
                # Structural faults must be caught without the seal too.
                if fault.structural:
                    try:
                        bare = inject(healthy, fault, seed_n)
                    except FaultNotApplicable:
                        continue
                    bare.__dict__.pop("_integrity_seal", None)
                    try:
                        bare.verify()
                    except ReproError:
                        pass
                    else:
                        print(
                            f"smoke_faults: STRUCTURAL MISS: {fmt} / "
                            f"{fault.name} seed {seed_n} passed unsealed "
                            "verify()",
                            file=sys.stderr,
                        )
                        violations += 1
        # The sweep must not have perturbed the original.
        healthy.verify()
        if not np.array_equal(healthy.spmv(x), y_ref):
            print(
                f"smoke_faults: injection mutated the original {fmt} matrix",
                file=sys.stderr,
            )
            violations += 1

    if injected == 0:
        print("smoke_faults: no faults were injected", file=sys.stderr)
        return 1
    print(
        f"smoke_faults: {injected} injections over {len(FORMATS)} formats: "
        f"{caught} caught, {silent_ok} uncaught-but-harmless, "
        f"{skipped} not applicable, {violations} violations"
    )
    return 1 if violations else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument("--size", type=int, default=64)
    args = parser.parse_args(argv)
    return run(seeds=args.seeds, size=args.size)


if __name__ == "__main__":
    sys.exit(main())
