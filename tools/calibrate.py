"""Calibration of the machine model against the paper's tables.

Precomputes the (machine-independent) per-thread work decompositions
for a catalog subset once, then searches the model's free parameters --
bandwidths, overlap, kernel cycle costs, residency shape -- to minimize
the weighted relative error against the paper's Table II / III / IV
aggregate cells.  The winning constants are frozen into
``repro.machine.topology.clovertown_8core`` and
``repro.machine.costmodel.CostModel`` (DESIGN.md section 6).

``--advisor-out PATH`` is a separate, much cheaper mode: instead of
fitting the paper's machine model it measures *this* host -- ns/nnz per
(format, kernel tier), per-call overhead, per-worker dispatch costs --
and writes the JSON calibration the configuration advisor
(:mod:`repro.perf.advisor`) uses for real-clock predictions.  Point
``REPRO_ADVISOR_CALIBRATION`` at the file (or write it to the default
``advisor_calibration.json``) and ``--format auto`` picks from
measured throughput instead of the analytic fallback.

Run:  python tools/calibrate.py [--evals 400] [--scale 0.0625] [--limit 10]
      python tools/calibrate.py --advisor-out advisor_calibration.json
"""

from __future__ import annotations

import argparse
import dataclasses
import time

import numpy as np

from repro.formats.conversions import convert
from repro.machine.costmodel import CostModel
from repro.machine.engine import solve_makespan
from repro.machine.topology import clovertown_8core, place_threads
from repro.machine.traffic import VALUE_SIZE, analyze_threads
from repro.matrices.collection import ML_IDS, ML_VI_IDS, MS_IDS, MS_VI_IDS, realize

CONFIGS = ((1, "close"), (2, "close"), (2, "spread"), (4, "close"), (8, "close"))


def subset(ids, limit):
    step = max(1, len(ids) // limit)
    return tuple(ids[::step][:limit])


def precompute(scale, limit):
    """(mid, fmt) -> {config: (works, total_shared)} plus set membership."""
    ms, ml = subset(MS_IDS, limit), subset(ML_IDS, limit)
    msv, mlv = subset(MS_VI_IDS, limit), subset(ML_VI_IDS, limit)
    ids = sorted(set(ms + ml + msv + mlv))
    cache = {}
    for mid in ids:
        mat = realize(mid, scale=scale)
        fmts = ["csr", "csr-du"]
        if mid in set(msv + mlv):
            fmts.append("csr-vi")
        for fmt in fmts:
            conv = convert(mat, fmt)
            total_shared = {"x": conv.ncols * VALUE_SIZE}
            per_cfg = {}
            for threads, placement in CONFIGS:
                _, works = analyze_threads(conv, threads)
                for w in works:
                    if "vals_unique" in w.shared_bytes:
                        total_shared["vals_unique"] = w.shared_bytes["vals_unique"]
                per_cfg[(threads, placement)] = works
            cache[(mid, fmt)] = (per_cfg, total_shared)
    return cache, dict(MS=ms, ML=ml, MS_vi=msv, ML_vi=mlv)


# Paper targets: (weight, value)
T2_SPEEDUP = {  # CSR scaling vs own serial
    ("MS", (2, "close")): 1.17, ("MS", (2, "spread")): 1.93,
    ("MS", (4, "close")): 2.63, ("MS", (8, "close")): 6.19,
    ("ML", (2, "close")): 1.15, ("ML", (2, "spread")): 1.24,
    ("ML", (4, "close")): 1.28, ("ML", (8, "close")): 2.12,
}
T2_SERIAL = {"MS": 619.4, "ML": 477.8}
T3 = {  # csr-du vs csr
    ("MS", 1): 1.02, ("MS", 2): 1.24, ("MS", 4): 1.24, ("MS", 8): 1.05,
    ("ML", 1): 1.01, ("ML", 2): 1.10, ("ML", 4): 1.15, ("ML", 8): 1.20,
}
T4 = {  # csr-vi vs csr
    ("MS_vi", 1): 1.03, ("MS_vi", 2): 1.30, ("MS_vi", 4): 1.25, ("MS_vi", 8): 1.02,
    ("ML_vi", 1): 1.12, ("ML_vi", 2): 1.36, ("ML_vi", 4): 1.55, ("ML_vi", 8): 1.59,
}

PARAM_SPACE = {  # (lo, hi, log?)
    "per_element": (3.0, 10.0, False),
    "per_row": (2.0, 14.0, False),
    "du_decode_per_element": (-1.0, 3.0, False),
    "du_per_unit": (2.0, 25.0, False),
    "vi_extra_per_element": (-0.5, 7.0, False),
    "core_bw": (1.5e9, 6e9, True),
    "die_bw": (1.5e9, 6e9, True),
    "fsb_bw": (1.8e9, 7e9, True),
    "mem_bw": (2.5e9, 9e9, True),
    "overlap": (0.0, 0.9, False),
    "l2_core_bw": (4e9, 2e10, True),
    "l2_die_bw": (5e9, 3e10, True),
    "residency_exponent": (1.0, 5.0, False),
    "cache_effectiveness": (0.5, 1.0, False),
    "x_reload": (1.0, 9.0, False),
}


def build(params, scale):
    machine = dataclasses.replace(
        clovertown_8core(),
        core_bw=params["core_bw"],
        die_bw=params["die_bw"],
        fsb_bw=params["fsb_bw"],
        mem_bw=params["mem_bw"],
        l2_core_bw=params["l2_core_bw"],
        l2_die_bw=params["l2_die_bw"],
        overlap=params["overlap"],
        x_reload=params["x_reload"],
        residency_exponent=params["residency_exponent"],
        cache_effectiveness=params["cache_effectiveness"],
    ).scaled(scale)
    cost = CostModel(
        per_element=params["per_element"],
        per_row=params["per_row"],
        du_decode_per_element=params["du_decode_per_element"],
        du_per_unit=params["du_per_unit"],
        vi_extra_per_element=params["vi_extra_per_element"],
    )
    return machine, cost


def evaluate(params, cache, sets, scale, verbose=False):
    machine, cost = build(params, scale)
    placements = {cfg: place_threads(machine, cfg[0], cfg[1]) for cfg in CONFIGS}
    times = {}
    for (mid, fmt), (per_cfg, total_shared) in cache.items():
        for cfg, works in per_cfg.items():
            res = solve_makespan(
                works, placements[cfg], machine, cost, total_shared=total_shared
            )
            times[(mid, fmt, cfg)] = res.time_s

    def avg(vals):
        return sum(vals) / len(vals)

    err = 0.0
    report = []

    # serial MFLOPS
    for name in ("MS", "ML"):
        mf = avg(
            [
                2 * sum(w.nnz for w in cache[(m, "csr")][0][(1, "close")])
                / times[(m, "csr", (1, "close"))] / 1e6
                for m in sets[name]
            ]
        )
        tgt = T2_SERIAL[name]
        err += 2.0 * ((mf - tgt) / tgt) ** 2
        report.append(f"T2 serial {name}: {mf:7.1f} (paper {tgt})")

    for (name, cfg), tgt in T2_SPEEDUP.items():
        sp = avg(
            [
                times[(m, "csr", (1, "close"))] / times[(m, "csr", cfg)]
                for m in sets[name]
            ]
        )
        err += 1.5 * ((sp - tgt) / tgt) ** 2
        report.append(f"T2 {name} {cfg}: {sp:5.2f} (paper {tgt})")

    for table, fmt in ((T3, "csr-du"), (T4, "csr-vi")):
        for (name, threads), tgt in table.items():
            cfg = (threads, "close")
            sp = avg(
                [
                    times[(m, "csr", cfg)] / times[(m, fmt, cfg)]
                    for m in sets[name]
                ]
            )
            err += ((sp - tgt) / tgt) ** 2
            report.append(f"{fmt} {name} t={threads}: {sp:5.2f} (paper {tgt})")
    if verbose:
        print("\n".join(report))
    return err


def sample(rng):
    out = {}
    for k, (lo, hi, log) in PARAM_SPACE.items():
        if log:
            out[k] = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        else:
            out[k] = float(rng.uniform(lo, hi))
    return out


def perturb(rng, base, sigma=0.15):
    out = {}
    for k, (lo, hi, log) in PARAM_SPACE.items():
        v = base[k]
        if log:
            v = float(np.exp(np.log(v) + rng.normal(0, sigma)))
        else:
            v = float(v + rng.normal(0, sigma * (hi - lo)))
        out[k] = float(np.clip(v, lo, hi))
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--evals", type=int, default=400)
    ap.add_argument("--scale", type=float, default=0.0625)
    ap.add_argument("--limit", type=int, default=10)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument(
        "--advisor-out",
        type=str,
        default=None,
        metavar="PATH",
        help="measure this host and write the advisor calibration JSON "
        "instead of running the machine-model search",
    )
    args = ap.parse_args()

    if args.advisor_out:
        from repro.perf.advisor import measure_calibration
        from repro.perf.advisor.model import save_calibration

        t0 = time.time()
        cal = measure_calibration()
        save_calibration(cal, args.advisor_out)
        print(
            f"advisor calibration {cal.calibration_id} "
            f"({time.time() - t0:.1f}s) -> {args.advisor_out}"
        )
        for key in sorted(cal.ns_per_nnz):
            print(f"  {key:<22} {cal.ns_per_nnz[key]:10.2f} ns/nnz")
        print(f"  per_call               {cal.per_call_s * 1e6:10.2f} us")
        print(
            f"  thread dispatch/worker {cal.thread_call_overhead_s * 1e6:10.2f} us"
        )
        return

    t0 = time.time()
    cache, sets = precompute(args.scale, args.limit)
    print(f"precompute: {time.time() - t0:.1f}s, {len(cache)} (matrix, fmt) pairs")

    rng = np.random.default_rng(args.seed)
    best = {
        "per_element": 3.719, "per_row": 6.309,
        "du_decode_per_element": 1.68, "du_per_unit": 12.77,
        "vi_extra_per_element": 4.0, "core_bw": 3.486e9, "die_bw": 3.538e9,
        "fsb_bw": 4.041e9, "mem_bw": 5.734e9, "overlap": 0.9,
        "l2_core_bw": 1.181e10, "l2_die_bw": 1.348e10,
        "residency_exponent": 3.045, "cache_effectiveness": 0.8522,
        "x_reload": 5.0,
    }
    best_err = evaluate(best, cache, sets, args.scale)
    print(f"init err={best_err:.4f}")
    for i in range(args.evals):
        # 60% global random, 40% local perturbation of the best.
        r = rng.random()
        params = (
            sample(rng)
            if best is None or r < 0.25
            else perturb(rng, best, sigma=0.25 if r < 0.6 else 0.08)
        )
        err = evaluate(params, cache, sets, args.scale)
        if err < best_err:
            best, best_err = params, err
            print(f"[{i:4d}] err={err:8.4f}  <- new best")
    print(f"\nbest err={best_err:.4f}")
    for k, v in best.items():
        print(f"  {k} = {v:.4g}")
    print()
    evaluate(best, cache, sets, args.scale, verbose=True)


if __name__ == "__main__":
    main()
