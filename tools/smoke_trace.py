"""Telemetry smoke check: run a tiny traced benchmark, validate the trace.

Runs ``python -m repro.bench table2`` at a reduced scale with ``--trace``
and checks that

* every emitted JSONL event conforms to the schema
  (:func:`repro.telemetry.export.validate_event`),
* every event name belongs to the documented vocabulary
  (:data:`repro.telemetry.metrics.KNOWN_EVENTS`), and
* the trace contains the load-bearing signals: per-matrix spans,
  CSR-DU unit-width histograms, and per-thread nnz counters.

Exit status 0 means the instrumentation pipeline is healthy; the pytest
suite runs :func:`run` directly so regressions fail tier-1.

Run:  PYTHONPATH=src python tools/smoke_trace.py [--scale 0.03125] [--limit 2]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

from repro.bench.cli import main as bench_main
from repro.errors import TelemetryError
from repro.telemetry.export import read_jsonl, validate_event
from repro.telemetry.metrics import KNOWN_EVENTS

#: Event names a traced table2 run must contain to be considered healthy.
REQUIRED_EVENTS = frozenset(
    {
        "bench.matrix",
        "bench.cell",
        "convert",
        "encode.csr_du.units",
        "plan.build",
        "plan.hit",
        "plan.miss",
        "partition.nnz",
        "sim.spmv",
        "sim.bound",
    }
)


def run(
    *,
    scale: float = 0.03125,
    limit: int = 2,
    path: str | None = None,
    experiment: str = "table2",
) -> int:
    """Run one traced experiment and validate the trace; 0 on success."""
    owned = path is None
    if owned:
        fd, path = tempfile.mkstemp(suffix=".jsonl", prefix="smoke_trace_")
        os.close(fd)
    try:
        rc = bench_main(
            [
                experiment,
                "--scale",
                str(scale),
                "--limit",
                str(limit),
                "--trace",
                path,
            ]
        )
        if rc != 0:
            print(f"smoke_trace: bench exited with {rc}", file=sys.stderr)
            return rc
        events = read_jsonl(path)
        if not events:
            print("smoke_trace: trace is empty", file=sys.stderr)
            return 1
        names: set[str] = set()
        for i, event in enumerate(events):
            try:
                validate_event(event)
            except TelemetryError as exc:
                print(f"smoke_trace: event {i} invalid: {exc}", file=sys.stderr)
                return 1
            names.add(event["name"])
        unknown = names - KNOWN_EVENTS
        if unknown:
            print(
                f"smoke_trace: undocumented event names {sorted(unknown)} "
                "(extend repro.telemetry.metrics.KNOWN_EVENTS)",
                file=sys.stderr,
            )
            return 1
        missing = REQUIRED_EVENTS - names
        if missing:
            print(
                f"smoke_trace: required events missing {sorted(missing)}",
                file=sys.stderr,
            )
            return 1
        print(f"smoke_trace: {len(events)} events, all valid")
        return 0
    finally:
        if owned and path is not None and os.path.exists(path):
            os.unlink(path)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.03125)
    parser.add_argument("--limit", type=int, default=2)
    parser.add_argument("--experiment", type=str, default="table2")
    parser.add_argument(
        "--trace", type=str, default=None, help="keep the trace at this path"
    )
    args = parser.parse_args(argv)
    return run(
        scale=args.scale,
        limit=args.limit,
        path=args.trace,
        experiment=args.experiment,
    )


if __name__ == "__main__":
    sys.exit(main())
