"""Telemetry smoke check: run a tiny traced benchmark, validate the trace.

Runs ``python -m repro.bench table2`` at a reduced scale with ``--trace``
and checks that

* every emitted JSONL event conforms to the schema
  (:func:`repro.telemetry.export.validate_event`),
* every event name belongs to the documented vocabulary
  (:data:`repro.telemetry.metrics.KNOWN_EVENTS`), and
* the trace contains the load-bearing signals: per-matrix spans,
  CSR-DU unit-width histograms, per-thread nnz counters, and one
  ``perf.attribution`` record per bench cell with its full payload.

Further self-contained checks run under scoped collectors/runtimes:
the ``parallel.chunk`` spans of a small multithreaded SpMV (the bench
trace above uses the model clock, which never spins up the executor),
the fault/observability paths, the ``advisor.pick`` advise/realized
pair the configuration advisor emits, the backend-labelled
``spmv.chunk.seconds`` histograms of a thread-vs-process pair, and the
cross-process merge (worker spans, shard-merged histograms, per-worker
chrome tracks via ``--chrome-out``).

Exit status 0 means the instrumentation pipeline is healthy; any
failure prints the offending event.  The pytest suite runs :func:`run`
directly so regressions fail tier-1.

Run:  PYTHONPATH=src python tools/smoke_trace.py [--scale 0.03125] [--limit 2]
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import tempfile

from repro.bench.cli import main as bench_main
from repro.errors import TelemetryError
from repro.telemetry.export import read_jsonl, validate_event
from repro.telemetry.metrics import KNOWN_EVENTS

#: Event names a traced table2 run must contain to be considered healthy.
REQUIRED_EVENTS = frozenset(
    {
        "bench.matrix",
        "bench.cell",
        "convert",
        "convert.cache.miss",
        "encode.batched",
        "encode.csr_du.units",
        "plan.build",
        "plan.hit",
        "plan.miss",
        "partition.nnz",
        "sim.spmv",
        "sim.bound",
        "perf.attribution",
    }
)

#: Attributes each event kind must carry (checked on every occurrence).
REQUIRED_PAYLOADS: dict[str, frozenset] = {
    "perf.attribution": frozenset(
        {
            "format",
            "threads",
            "placement",
            "matrix_id",
            "time_s",
            "mflops",
            "bytes_per_iter",
            "index_bytes",
            "value_bytes",
            "vector_bytes",
            "flops_per_byte",
            "effective_gbps",
            "roofline_pct",
            "bound",
            "nnz_imbalance",
            "time_imbalance",
            "compression_ratio",
            "setup_s",
        }
    ),
    "parallel.chunk": frozenset({"thread", "lo", "hi", "nnz", "kind"}),
    "kernel.fallback": frozenset({"format", "from_tier", "to_tier", "error"}),
    "executor.retry": frozenset({"format", "thread", "lo", "hi", "error"}),
    "obs.alert": frozenset({"rule", "expr", "metric", "value", "threshold"}),
    "obs.snapshot": frozenset({"histograms", "counters", "gauges", "alerts"}),
    "advisor.pick": frozenset(
        {
            "matrix_id",
            "format",
            "kernel",
            "threads",
            "backend",
            "partition",
            "predicted_s",
            "realized_s",
            "source",
            "phase",
        }
    ),
    "executor.chunk.abandoned": frozenset(
        {"thread", "lo", "hi", "timeout_s", "kind", "backend"}
    ),
    "resilience.breaker.open": frozenset({"key", "failures"}),
    "resilience.breaker.half_open": frozenset({"key", "failures"}),
    "resilience.breaker.close": frozenset({"key", "failures"}),
    "resilience.degrade": frozenset(
        {
            "from_backend",
            "from_storage",
            "to_backend",
            "to_storage",
            "error",
            "format",
        }
    ),
    "resilience.deadline.expired": frozenset({"label", "budget_s"}),
}


def _check_payloads(events: list[dict]) -> int:
    """Every event of a payload-bearing name carries its required attrs."""
    for i, event in enumerate(events):
        required = REQUIRED_PAYLOADS.get(event["name"])
        if required is None:
            continue
        missing = required - set(event["attrs"])
        if missing:
            print(
                f"smoke_trace: event {i} ({event['name']}) missing payload "
                f"keys {sorted(missing)}: {event!r}",
                file=sys.stderr,
            )
            return 1
    return 0


def check_parallel_chunks(nthreads: int = 4, calls: int = 2) -> int:
    """Trace a small multithreaded SpMV; validate its chunk spans.

    Runs under a scoped collector (the bench run above uses the model
    clock and never executes :class:`~repro.parallel.executor.ParallelSpMV`),
    so the ``parallel.chunk`` instrumentation is exercised end to end:
    schema, payload keys, nnz census adding up, and distinct threads.
    """
    import numpy as np

    from repro import telemetry
    from repro.formats.csr import CSRMatrix
    from repro.parallel.executor import ParallelSpMV

    rng = np.random.default_rng(17)
    dense = (rng.random((96, 96)) < 0.1) * rng.random((96, 96))
    csr = CSRMatrix.from_dense(dense)
    x = rng.random(96)
    expected = csr.spmv(x)
    prev = telemetry.set_collector(telemetry.Collector())
    try:
        with ParallelSpMV(csr, nthreads, format_name="csr-du") as par:
            for _ in range(calls):
                got = par(x)
        events = [
            dataclasses.asdict(ev)
            for ev in telemetry.get_collector().snapshot()
        ]
    finally:
        telemetry.set_collector(prev)
    if not np.allclose(got, expected, rtol=1e-13, atol=1e-13):
        print("smoke_trace: traced parallel SpMV diverged", file=sys.stderr)
        return 1
    for i, event in enumerate(events):
        try:
            validate_event(event)
        except TelemetryError as exc:
            print(
                f"smoke_trace: parallel event {i} invalid: {exc}: {event!r}",
                file=sys.stderr,
            )
            return 1
    unknown = {e["name"] for e in events} - KNOWN_EVENTS
    if unknown:
        print(
            f"smoke_trace: undocumented parallel event names {sorted(unknown)}",
            file=sys.stderr,
        )
        return 1
    if _check_payloads(events):
        return 1
    chunks = [e for e in events if e["name"] == "parallel.chunk"]
    if len(chunks) != nthreads * calls:
        print(
            f"smoke_trace: expected {nthreads * calls} parallel.chunk spans, "
            f"got {len(chunks)}",
            file=sys.stderr,
        )
        return 1
    total_nnz = sum(e["attrs"]["nnz"] for e in chunks)
    if total_nnz != calls * csr.nnz:
        print(
            f"smoke_trace: chunk nnz census {total_nnz} != "
            f"{calls} calls x {csr.nnz} nnz",
            file=sys.stderr,
        )
        return 1
    print(
        f"smoke_trace: parallel check OK ({len(chunks)} chunk spans, "
        f"{len(events)} events)"
    )
    return 0


def check_fault_events() -> int:
    """Exercise the robustness instrumentation; validate its events.

    Two live checks under a scoped collector:

    * a :class:`~repro.robust.guard.GuardedKernel` whose first tier
      always fails must fall back, produce the right answer, and emit
      exactly one ``kernel.fallback`` counter with the full payload;
    * a :class:`~repro.parallel.executor.ParallelSpMV` whose cached
      chunk encode is corrupted in place must invalidate + re-encode +
      retry, produce the clean answer, and emit ``executor.retry``.
    """
    import numpy as np

    from repro import telemetry
    from repro.compress.encode_cache import ConvertCache
    from repro.errors import EncodingError
    from repro.formats.conversions import convert
    from repro.formats.csr import CSRMatrix
    from repro.kernels.registry import get_kernel
    from repro.parallel.executor import ParallelSpMV
    from repro.robust import GuardedKernel, inject

    rng = np.random.default_rng(23)
    dense = (rng.random((80, 80)) < 0.1) * rng.random((80, 80))
    csr = CSRMatrix.from_dense(dense)
    x = rng.random(80)

    def failing_tier(matrix, x):
        raise EncodingError("injected tier failure")

    failing_tier.tier = "batched"

    prev = telemetry.set_collector(telemetry.Collector())
    try:
        du = convert(csr, "csr-du")
        expected = du.spmv(x)
        guarded = GuardedKernel(
            "csr-du", chain=(failing_tier, get_kernel("csr-du", "vectorized"))
        )
        got = guarded(du, x)
        with ParallelSpMV(
            csr, 2, format_name="csr-du", convert_cache=ConvertCache()
        ) as par:
            clean = par(x).copy()
            inject(par.chunks[0], "ctl-truncate", 0, copy_matrix=False)
            retried = par(x)
        events = [
            dataclasses.asdict(ev)
            for ev in telemetry.get_collector().snapshot()
        ]
    finally:
        telemetry.set_collector(prev)
    if not np.array_equal(got, expected):
        print("smoke_trace: guarded fallback result diverged", file=sys.stderr)
        return 1
    if not np.array_equal(retried, clean):
        print("smoke_trace: retried executor result diverged", file=sys.stderr)
        return 1
    for i, event in enumerate(events):
        try:
            validate_event(event)
        except TelemetryError as exc:
            print(
                f"smoke_trace: fault event {i} invalid: {exc}: {event!r}",
                file=sys.stderr,
            )
            return 1
    unknown = {e["name"] for e in events} - KNOWN_EVENTS
    if unknown:
        print(
            f"smoke_trace: undocumented fault event names {sorted(unknown)}",
            file=sys.stderr,
        )
        return 1
    if _check_payloads(events):
        return 1
    fallbacks = [e for e in events if e["name"] == "kernel.fallback"]
    retries = [e for e in events if e["name"] == "executor.retry"]
    if len(fallbacks) != 1:
        print(
            f"smoke_trace: expected 1 kernel.fallback event, got "
            f"{len(fallbacks)}",
            file=sys.stderr,
        )
        return 1
    if fallbacks[0]["attrs"]["from_tier"] != "batched" or (
        fallbacks[0]["attrs"]["to_tier"] != "vectorized"
    ):
        print(
            f"smoke_trace: kernel.fallback tiers wrong: {fallbacks[0]!r}",
            file=sys.stderr,
        )
        return 1
    if len(retries) != 1:
        print(
            f"smoke_trace: expected 1 executor.retry event, got "
            f"{len(retries)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"smoke_trace: fault check OK ({len(fallbacks)} fallback, "
        f"{len(retries)} retry events)"
    )
    return 0


def check_obs() -> int:
    """Live observability end to end, with a fault injected.

    Under a scoped :class:`~repro.obs.core.ObsRuntime` and collector:

    * a multithreaded SpMV populates the ``spmv.chunk.seconds``
      histograms;
    * a :class:`~repro.robust.guard.GuardedKernel` whose first tier
      always fails marks ``kernel.fallback``, which must fire the
      default ``kernel-fallback`` SLO rule on the next evaluation;
    * the resource monitor samples once (deterministically, no thread);
    * the resulting ``obs.alert`` / ``obs.snapshot`` / ``obs.resource.*``
      telemetry events must validate with their full payloads;
    * the OpenMetrics exposition must carry the chunk-latency histogram
      with p50/p99, the resource gauges, and the fired alert.
    """
    import numpy as np

    from repro import obs, telemetry
    from repro.compress.encode_cache import ConvertCache
    from repro.errors import EncodingError
    from repro.formats.conversions import convert
    from repro.formats.csr import CSRMatrix
    from repro.kernels.registry import get_kernel
    from repro.obs.resource import ResourceMonitor
    from repro.robust import GuardedKernel
    from repro.parallel.executor import ParallelSpMV

    rng = np.random.default_rng(31)
    dense = (rng.random((96, 96)) < 0.1) * rng.random((96, 96))
    csr = CSRMatrix.from_dense(dense)
    x = rng.random(96)

    def failing_tier(matrix, x):
        raise EncodingError("injected tier failure")

    failing_tier.tier = "batched"

    runtime = obs.ObsRuntime()
    prev_runtime = obs.set_runtime(runtime)
    prev = telemetry.set_collector(telemetry.Collector())
    try:
        with ParallelSpMV(
            csr, 2, format_name="csr-du", convert_cache=ConvertCache()
        ) as par:
            for _ in range(3):
                par(x)
        du = convert(csr, "csr-du")
        expected = du.spmv(x)
        guarded = GuardedKernel(
            "csr-du", chain=(failing_tier, get_kernel("csr-du", "vectorized"))
        )
        got = guarded(du, x)
        ResourceMonitor(runtime).sample_once()
        runtime.flush_snapshot()
        text = runtime.render_openmetrics()
        events = [
            dataclasses.asdict(ev)
            for ev in telemetry.get_collector().snapshot()
        ]
        alerts = list(runtime.alerts)
    finally:
        telemetry.set_collector(prev)
        obs.set_runtime(prev_runtime)
        runtime.close()
    if not np.array_equal(got, expected):
        print("smoke_trace: obs guarded fallback diverged", file=sys.stderr)
        return 1
    for i, event in enumerate(events):
        try:
            validate_event(event)
        except TelemetryError as exc:
            print(
                f"smoke_trace: obs event {i} invalid: {exc}: {event!r}",
                file=sys.stderr,
            )
            return 1
    unknown = {e["name"] for e in events} - KNOWN_EVENTS
    if unknown:
        print(
            f"smoke_trace: undocumented obs event names {sorted(unknown)}",
            file=sys.stderr,
        )
        return 1
    if _check_payloads(events):
        return 1
    if not [a for a in alerts if a.rule == "kernel-fallback"]:
        print(
            "smoke_trace: injected fallback did not fire the "
            f"kernel-fallback rule (alerts: {[a.rule for a in alerts]})",
            file=sys.stderr,
        )
        return 1
    alert_events = [e for e in events if e["name"] == "obs.alert"]
    if not alert_events:
        print("smoke_trace: no obs.alert telemetry event", file=sys.stderr)
        return 1
    gauge_names = {e["name"] for e in events if e["kind"] == "gauge"}
    missing_gauges = {
        "obs.resource.rss_bytes",
        "obs.resource.gc_collections",
        "obs.resource.threads",
    } - gauge_names
    if missing_gauges:
        print(
            f"smoke_trace: resource gauges missing {sorted(missing_gauges)}",
            file=sys.stderr,
        )
        return 1
    if not [e for e in events if e["name"] == "obs.snapshot"]:
        print("smoke_trace: no obs.snapshot event", file=sys.stderr)
        return 1
    required_series = (
        "spmv_chunk_seconds_bucket",
        "spmv_chunk_seconds_p50",
        "spmv_chunk_seconds_p99",
        "obs_resource_rss_bytes",
        'obs_alerts_fired_total{rule="kernel-fallback"}',
    )
    for series in required_series:
        if series not in text:
            print(
                f"smoke_trace: OpenMetrics snapshot missing {series!r}",
                file=sys.stderr,
            )
            return 1
    if not text.endswith("# EOF\n"):
        print("smoke_trace: OpenMetrics snapshot missing # EOF", file=sys.stderr)
        return 1
    print(
        f"smoke_trace: obs check OK ({len(alerts)} alerts, "
        f"{sum(1 for ln in text.splitlines() if not ln.startswith('#'))} "
        "openmetrics samples)"
    )
    return 0


def check_backend_labels() -> int:
    """Backend-labelled chunk latency, thread vs process, end to end.

    Runs the same matrix through both executors under a scoped
    :class:`~repro.obs.core.ObsRuntime` and collector, then asserts

    * the OpenMetrics exposition carries ``spmv_chunk_seconds`` series
      for ``backend="thread"`` AND ``backend="process"`` (the scaling
      dashboards group on this label);
    * every process-backend ``parallel.chunk`` event validates and
      carries the ``backend`` and worker-measured ``seconds`` payload
      on top of the thread payload keys.
    """
    import numpy as np

    from repro import obs, telemetry
    from repro.formats.csr import CSRMatrix
    from repro.parallel import make_executor

    rng = np.random.default_rng(37)
    dense = (rng.random((64, 64)) < 0.12) * rng.random((64, 64))
    csr = CSRMatrix.from_dense(dense)
    x = rng.random(64)

    runtime = obs.ObsRuntime()
    prev_runtime = obs.set_runtime(runtime)
    prev = telemetry.set_collector(telemetry.Collector())
    try:
        with make_executor(csr, 2, backend="thread", format_name="csr") as ex:
            y_thread = ex(x)
        with make_executor(csr, 2, backend="process", format_name="csr") as ex:
            y_process = ex(x)
        text = runtime.render_openmetrics()
        events = [
            dataclasses.asdict(ev)
            for ev in telemetry.get_collector().snapshot()
        ]
    finally:
        telemetry.set_collector(prev)
        obs.set_runtime(prev_runtime)
        runtime.close()
    if not np.array_equal(y_thread, y_process):
        print(
            "smoke_trace: thread and process backends diverged",
            file=sys.stderr,
        )
        return 1
    for i, event in enumerate(events):
        try:
            validate_event(event)
        except TelemetryError as exc:
            print(
                f"smoke_trace: backend event {i} invalid: {exc}: {event!r}",
                file=sys.stderr,
            )
            return 1
    unknown = {e["name"] for e in events} - KNOWN_EVENTS
    if unknown:
        print(
            f"smoke_trace: undocumented backend event names {sorted(unknown)}",
            file=sys.stderr,
        )
        return 1
    if _check_payloads(events):
        return 1
    # Workers now emit parallel.chunk *spans* too (merged by xproc);
    # the parent's per-chunk record is the counter event.
    process_chunks = [
        e
        for e in events
        if e["name"] == "parallel.chunk"
        and e["kind"] == "counter"
        and e["attrs"].get("backend") == "process"
    ]
    if len(process_chunks) != 2:
        print(
            f"smoke_trace: expected 2 process parallel.chunk events, got "
            f"{len(process_chunks)}",
            file=sys.stderr,
        )
        return 1
    for e in process_chunks:
        if "seconds" not in e["attrs"]:
            print(
                f"smoke_trace: process chunk lacks worker seconds: {e!r}",
                file=sys.stderr,
            )
            return 1
    for backend in ("thread", "process"):
        needle = f'backend="{backend}"'
        series = [
            ln
            for ln in text.splitlines()
            if ln.startswith("spmv_chunk_seconds") and needle in ln
        ]
        if not series:
            print(
                "smoke_trace: OpenMetrics has no spmv_chunk_seconds series "
                f"labelled {needle}",
                file=sys.stderr,
            )
            return 1
    print(
        f"smoke_trace: backend label check OK ({len(process_chunks)} "
        "process chunks, both backends in the exposition)"
    )
    return 0


def check_xproc(
    nworkers: int = 2, calls: int = 3, chrome_out: str | None = None
) -> int:
    """Cross-process observability merge, end to end.

    Runs the process backend under a scoped collector + runtime and
    asserts the :mod:`repro.obs.xproc` merge delivered:

    * worker-emitted ``parallel.chunk`` spans with distinct worker pids
      (none of them the parent's) next to ``worker.attach`` /
      ``worker.multiply`` sub-spans;
    * a merged ``spmv.chunk.seconds`` histogram whose count equals the
      total chunks executed (workers x calls) and whose samples reach
      the OpenMetrics exposition labelled ``backend="process"``;
    * per-worker balance recovery (:func:`summarize_parallel` sees
      every worker of every call);
    * with ``chrome_out``, a merged chrome://tracing file carrying one
      process track per worker pid.
    """
    import json

    import numpy as np

    from repro import obs, telemetry
    from repro.formats.csr import CSRMatrix
    from repro.parallel import make_executor
    from repro.perf.imbalance import summarize_parallel
    from repro.telemetry.export import write_chrome_trace

    rng = np.random.default_rng(41)
    dense = (rng.random((96, 96)) < 0.1) * rng.random((96, 96))
    csr = CSRMatrix.from_dense(dense)
    x = rng.random(96)
    expected = csr.spmv(x)

    runtime = obs.ObsRuntime(rules=())
    prev_runtime = obs.set_runtime(runtime)
    collector = telemetry.Collector()
    prev = telemetry.set_collector(collector)
    try:
        with make_executor(
            csr, nworkers, backend="process", format_name="csr"
        ) as ex:
            for _ in range(calls):
                got = ex(x)
        snap = runtime.snapshot()
        text = runtime.render_openmetrics()
        events = [dataclasses.asdict(ev) for ev in collector.snapshot()]
        if chrome_out:
            write_chrome_trace(collector, chrome_out)
    finally:
        telemetry.set_collector(prev)
        obs.set_runtime(prev_runtime)
        runtime.close()
    if not np.allclose(got, expected, rtol=1e-13, atol=1e-13):
        print("smoke_trace: xproc process SpMV diverged", file=sys.stderr)
        return 1
    for i, event in enumerate(events):
        try:
            validate_event(event)
        except TelemetryError as exc:
            print(
                f"smoke_trace: xproc event {i} invalid: {exc}: {event!r}",
                file=sys.stderr,
            )
            return 1
    unknown = {e["name"] for e in events} - KNOWN_EVENTS
    if unknown:
        print(
            f"smoke_trace: undocumented xproc event names {sorted(unknown)}",
            file=sys.stderr,
        )
        return 1
    if _check_payloads(events):
        return 1
    worker_spans = [
        e
        for e in events
        if e["kind"] == "span"
        and e["name"] == "parallel.chunk"
        and "pid" in e["attrs"]
    ]
    if len(worker_spans) != nworkers * calls:
        print(
            f"smoke_trace: expected {nworkers * calls} worker chunk spans, "
            f"got {len(worker_spans)}",
            file=sys.stderr,
        )
        return 1
    pids = {e["attrs"]["pid"] for e in worker_spans}
    if len(pids) != nworkers or os.getpid() in pids:
        print(
            f"smoke_trace: worker span pids wrong: {sorted(pids)} "
            f"(parent {os.getpid()}, {nworkers} workers)",
            file=sys.stderr,
        )
        return 1
    for sub in ("worker.attach", "worker.multiply"):
        n = sum(1 for e in events if e["name"] == sub)
        if not n:
            print(f"smoke_trace: no {sub} spans merged", file=sys.stderr)
            return 1
    merged = [
        h
        for h in snap["histograms"]
        if h["name"] == "spmv.chunk.seconds"
        and h["labels"].get("backend") == "process"
    ]
    if len(merged) != 1 or merged[0]["count"] != nworkers * calls:
        counts = [h["count"] for h in merged]
        print(
            f"smoke_trace: merged spmv.chunk.seconds wrong: {len(merged)} "
            f"series, counts {counts} (want 1 series of {nworkers * calls})",
            file=sys.stderr,
        )
        return 1
    needle = 'backend="process"'
    if not any(
        ln.startswith("spmv_chunk_seconds") and needle in ln
        for ln in text.splitlines()
    ):
        print(
            "smoke_trace: OpenMetrics lacks worker-fed spmv_chunk_seconds "
            f"series labelled {needle}",
            file=sys.stderr,
        )
        return 1
    report = summarize_parallel(events)
    process_calls = [c for c in report.calls if len(c.busy_us) == nworkers]
    if len(process_calls) != calls:
        print(
            f"smoke_trace: balance recovery found {len(process_calls)} "
            f"{nworkers}-worker calls, want {calls}",
            file=sys.stderr,
        )
        return 1
    if chrome_out:
        with open(chrome_out, "r", encoding="utf-8") as fh:
            trace = json.load(fh)
        trace_pids = {
            ev["pid"]
            for ev in trace["traceEvents"]
            if ev.get("ph") == "X"
        }
        if not pids <= trace_pids:
            print(
                f"smoke_trace: chrome trace lacks worker tracks "
                f"(pids {sorted(trace_pids)}, want {sorted(pids)})",
                file=sys.stderr,
            )
            return 1
        print(f"smoke_trace: merged chrome trace at {chrome_out}")
    print(
        f"smoke_trace: xproc check OK ({len(worker_spans)} worker spans "
        f"from {len(pids)} pids, merged histogram count "
        f"{merged[0]['count']})"
    )
    return 0


def check_advisor_events() -> int:
    """Advise + report a realized time; validate the advisor.pick pair.

    Under a scoped collector: one :func:`repro.perf.advisor.advise`
    call on a tiny matrix must emit a schema-valid ``advisor.pick``
    event with ``phase="advise"``, and
    :func:`~repro.perf.advisor.record_realized` must emit the matching
    ``phase="realized"`` half carrying the measured wall clock for the
    same configuration.
    """
    from repro import telemetry
    from repro.formats.csr import CSRMatrix
    from repro.matrices.generators import dense_band
    from repro.perf.advisor import advise, record_realized

    csr = CSRMatrix.from_coo(dense_band(64, 2))
    prev = telemetry.set_collector(telemetry.Collector())
    try:
        choice = advise(csr, matrix_id=0, calibration=None)
        record_realized(choice, 1.25e-5)
        events = [
            dataclasses.asdict(ev)
            for ev in telemetry.get_collector().snapshot()
        ]
    finally:
        telemetry.set_collector(prev)
    for i, event in enumerate(events):
        try:
            validate_event(event)
        except TelemetryError as exc:
            print(
                f"smoke_trace: advisor event {i} invalid: {exc}: {event!r}",
                file=sys.stderr,
            )
            return 1
    unknown = {e["name"] for e in events} - KNOWN_EVENTS
    if unknown:
        print(
            f"smoke_trace: undocumented advisor event names {sorted(unknown)}",
            file=sys.stderr,
        )
        return 1
    if _check_payloads(events):
        return 1
    picks = [e for e in events if e["name"] == "advisor.pick"]
    phases = [e["attrs"].get("phase") for e in picks]
    if phases != ["advise", "realized"]:
        print(
            f"smoke_trace: expected advisor.pick phases "
            f"['advise', 'realized'], got {phases}",
            file=sys.stderr,
        )
        return 1
    advised, realized = picks
    pick_keys = ("format", "kernel", "threads", "backend", "partition")
    if any(
        advised["attrs"][k] != realized["attrs"][k] for k in pick_keys
    ):
        print(
            "smoke_trace: realized advisor.pick names a different config "
            "than the advise half",
            file=sys.stderr,
        )
        return 1
    if realized["attrs"]["realized_s"] != 1.25e-5:
        print(
            "smoke_trace: realized_s did not round-trip through the event",
            file=sys.stderr,
        )
        return 1
    print(
        f"smoke_trace: advisor check OK (picked "
        f"{advised['attrs']['format']}|{advised['attrs']['kernel']}, "
        f"source {advised['attrs']['source']})"
    )
    return 0


def check_resilience() -> int:
    """Resilience machinery end to end; validate its events and rules.

    Under a scoped collector and :class:`~repro.obs.core.ObsRuntime`
    (stock rules):

    * a :class:`~repro.resilience.breaker.CircuitBreaker` on a fake
      clock walks closed -> open -> half-open -> closed, emitting all
      three ``resilience.breaker.*`` transitions;
    * a :class:`~repro.resilience.degrade.ResilientExecutor` whose
      thread rung is persistently poisoned (chaos fault on thread 0's
      chunk) must degrade to the serial rung, answer bit-identically,
      and emit ``resilience.degrade``;
    * an expired :class:`~repro.resilience.policy.Deadline` must emit
      ``resilience.deadline.expired`` and raise the typed error;
    * the ``breaker-open`` and ``backend-degraded`` SLO rules must fire
      on the resulting snapshot, and every event must validate with its
      full payload.
    """
    import numpy as np

    from repro import obs, telemetry
    from repro.errors import DeadlineExceeded, EncodingError
    from repro.formats.csr import CSRMatrix
    from repro.obs.rules import default_rules
    from repro.resilience import chaos
    from repro.resilience.breaker import CircuitBreaker
    from repro.resilience.degrade import ResilientExecutor
    from repro.resilience.policy import Deadline

    rng = np.random.default_rng(43)
    dense = (rng.random((80, 80)) < 0.1) * rng.random((80, 80))
    csr = CSRMatrix.from_dense(dense)
    x = rng.random(80)
    expected = csr.spmv(x)

    runtime = obs.ObsRuntime(rules=default_rules())
    prev_runtime = obs.set_runtime(runtime)
    prev = telemetry.set_collector(telemetry.Collector())
    deadline_raised = False
    try:
        # Breaker state machine on a fake clock: open, cool down,
        # half-open probe, close.
        now = [0.0]
        breaker = CircuitBreaker(
            "shard:0:g0",
            failure_threshold=2,
            cooldown_s=5.0,
            clock=lambda: now[0],
        )
        breaker.record_failure()
        breaker.record_failure()  # -> open
        now[0] = 6.0
        if not breaker.allow():  # -> half-open probe admitted
            print("smoke_trace: cooled-down breaker refused its probe",
                  file=sys.stderr)
            return 1
        breaker.record_success()  # -> closed

        # Degradation ladder: thread rung poisoned, serial rung answers.
        chaos.arm(
            "thread.chunk",
            "raise",
            match={"thread": 0},
            times=1000,
            exc_factory=lambda: EncodingError("chaos: poisoned chunk"),
        )
        try:
            with ResilientExecutor(
                csr, 2, backend="thread", storage="mem", format_name="csr"
            ) as rex:
                got = rex(x)
                rung = rex.active_rung
        finally:
            chaos.disarm_all()

        # Deadline expiry on a fake clock.
        dnow = [0.0]
        deadline = Deadline(0.5, clock=lambda: dnow[0])
        dnow[0] = 1.0
        try:
            deadline.check("smoke.check")
        except DeadlineExceeded:
            deadline_raised = True

        runtime.flush_snapshot()
        alerts = [a.rule for a in runtime.alerts]
        text = runtime.render_openmetrics()
        events = [
            dataclasses.asdict(ev)
            for ev in telemetry.get_collector().snapshot()
        ]
    finally:
        telemetry.set_collector(prev)
        obs.set_runtime(prev_runtime)
        runtime.close()
    if not np.array_equal(got, expected):
        print("smoke_trace: degraded serial result diverged", file=sys.stderr)
        return 1
    if rung != ("serial", "mem"):
        print(
            f"smoke_trace: expected serial rung after degradation, got {rung}",
            file=sys.stderr,
        )
        return 1
    if not deadline_raised:
        print("smoke_trace: expired deadline did not raise", file=sys.stderr)
        return 1
    for i, event in enumerate(events):
        try:
            validate_event(event)
        except TelemetryError as exc:
            print(
                f"smoke_trace: resilience event {i} invalid: {exc}: {event!r}",
                file=sys.stderr,
            )
            return 1
    unknown = {e["name"] for e in events} - KNOWN_EVENTS
    if unknown:
        print(
            f"smoke_trace: undocumented resilience event names "
            f"{sorted(unknown)}",
            file=sys.stderr,
        )
        return 1
    if _check_payloads(events):
        return 1
    names = {e["name"] for e in events}
    required = {
        "resilience.breaker.open",
        "resilience.breaker.half_open",
        "resilience.breaker.close",
        "resilience.degrade",
        "resilience.deadline.expired",
        "executor.retry",
    }
    missing = required - names
    if missing:
        print(
            f"smoke_trace: resilience events missing {sorted(missing)}",
            file=sys.stderr,
        )
        return 1
    for rule in ("breaker-open", "backend-degraded"):
        if rule not in alerts:
            print(
                f"smoke_trace: {rule} SLO rule did not fire "
                f"(alerts: {alerts})",
                file=sys.stderr,
            )
            return 1
    if "resilience_degrade_total" not in text:
        print(
            "smoke_trace: OpenMetrics snapshot lacks resilience_degrade_total",
            file=sys.stderr,
        )
        return 1
    print(
        f"smoke_trace: resilience check OK ({len(events)} events, "
        f"alerts {sorted(set(alerts))})"
    )
    return 0


def run(
    *,
    scale: float = 0.03125,
    limit: int = 2,
    path: str | None = None,
    experiment: str = "table2",
    chrome_out: str | None = None,
) -> int:
    """Run one traced experiment and validate the trace; 0 on success."""
    owned = path is None
    if owned:
        fd, path = tempfile.mkstemp(suffix=".jsonl", prefix="smoke_trace_")
        os.close(fd)
    fd, metrics_path = tempfile.mkstemp(suffix=".prom", prefix="smoke_trace_")
    os.close(fd)
    try:
        rc = bench_main(
            [
                experiment,
                "--scale",
                str(scale),
                "--limit",
                str(limit),
                "--trace",
                path,
                "--obs",
                "--metrics-out",
                metrics_path,
            ]
        )
        if rc != 0:
            print(f"smoke_trace: bench exited with {rc}", file=sys.stderr)
            return rc
        events = read_jsonl(path)
        if not events:
            print("smoke_trace: trace is empty", file=sys.stderr)
            return 1
        names: set[str] = set()
        for i, event in enumerate(events):
            try:
                validate_event(event)
            except TelemetryError as exc:
                print(f"smoke_trace: event {i} invalid: {exc}", file=sys.stderr)
                return 1
            names.add(event["name"])
        unknown = names - KNOWN_EVENTS
        if unknown:
            print(
                f"smoke_trace: undocumented event names {sorted(unknown)} "
                "(extend repro.telemetry.metrics.KNOWN_EVENTS)",
                file=sys.stderr,
            )
            return 1
        missing = REQUIRED_EVENTS - names
        if missing:
            print(
                f"smoke_trace: required events missing {sorted(missing)}",
                file=sys.stderr,
            )
            return 1
        if _check_payloads(events):
            return 1
        with open(metrics_path, "r", encoding="utf-8") as fh:
            metrics_text = fh.read()
        if not metrics_text.endswith("# EOF\n"):
            print(
                "smoke_trace: --metrics-out exposition missing # EOF",
                file=sys.stderr,
            )
            return 1
        samples = sum(
            1
            for ln in metrics_text.splitlines()
            if ln and not ln.startswith("#")
        )
        if not samples:
            print(
                "smoke_trace: --metrics-out exposition has no samples",
                file=sys.stderr,
            )
            return 1
        print(
            f"smoke_trace: {len(events)} events, all valid "
            f"({samples} openmetrics samples)"
        )
        rc = check_parallel_chunks()
        if rc:
            return rc
        rc = check_fault_events()
        if rc:
            return rc
        rc = check_obs()
        if rc:
            return rc
        rc = check_advisor_events()
        if rc:
            return rc
        rc = check_resilience()
        if rc:
            return rc
        rc = check_backend_labels()
        if rc:
            return rc
        return check_xproc(chrome_out=chrome_out)
    finally:
        if owned and path is not None and os.path.exists(path):
            os.unlink(path)
        if os.path.exists(metrics_path):
            os.unlink(metrics_path)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.03125)
    parser.add_argument("--limit", type=int, default=2)
    parser.add_argument("--experiment", type=str, default="table2")
    parser.add_argument(
        "--trace", type=str, default=None, help="keep the trace at this path"
    )
    parser.add_argument(
        "--chrome-out",
        type=str,
        default=None,
        help="write the xproc check's merged chrome trace here",
    )
    args = parser.parse_args(argv)
    return run(
        scale=args.scale,
        limit=args.limit,
        path=args.trace,
        experiment=args.experiment,
        chrome_out=args.chrome_out,
    )


if __name__ == "__main__":
    sys.exit(main())
