#!/usr/bin/env python
"""CI wrapper for the perf regression gate.

Equivalent to ``PYTHONPATH=src python -m repro.bench.baseline ...`` but
runnable from the repo root without environment setup::

    python tools/perf_gate.py --check-schema
    python tools/perf_gate.py run.json --history perf_history.json --snapshot

Exit status 1 on any regression or schema/self-test failure.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.baseline import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
