"""Advisor pick vs exhaustive oracle: per-matrix regret on this host.

For a corpus drawn from the paper catalog (MS, ML, and their VI
subsets), the configuration advisor (:mod:`repro.perf.advisor`) picks
one ``(format, kernel tier)`` configuration per matrix from structural
features plus a freshly measured host calibration.  The oracle is the
exhaustive alternative: every candidate configuration is measured,
real wall-clock, and the fastest wins.  Per-matrix **regret** is

    advisor-picked measured seconds / oracle-best measured seconds

so 1.0 means the advisor found the optimum and 1.25 means its pick ran
25% slower.  The documented safety contract is
:data:`repro.perf.advisor.REGRET_BOUND`: the *geometric mean* regret
over the corpus must stay at or under it, and the run exits nonzero if
it does not.

Also checked, because ``auto`` is only trustworthy if it is a pure
selector: ``make_executor(..., format_name="auto")`` must produce a
``y`` bit-identical to the same executor built with the advisor's pick
spelled explicitly.  Every advise call emits an ``advisor.pick``
telemetry event and the realized wall clock of the picked config is
reported back via :func:`repro.perf.advisor.record_realized`, so the
prediction-error column in the HTML dashboard has live pairs to chart.

The JSON carries the cells under ``experiments.advisor.cells`` -- the
exact shape :mod:`repro.bench.baseline` flattens -- so the perf gate
can track advisor quality directly::

    python tools/perf_gate.py BENCH_advisor.json --history perf_history.json

``--smoke`` shrinks everything (3 matrices, tiny scale, one call per
cell, no JSON) for CI: it checks that advise runs end to end, that the
pick is never catastrophically wrong, that ``advisor.pick`` events are
emitted, and that ``--format auto`` stays bit-identical, in seconds.

Run:  PYTHONPATH=src python benchmarks/microbench_advisor.py [--out PATH] [--smoke]
"""

from __future__ import annotations

import argparse
import json
import math
import sys

import numpy as np

from repro import telemetry
from repro.formats.conversions import convert
from repro.kernels.registry import get_kernel
from repro.matrices.collection import (
    ML_IDS,
    ML_VI_IDS,
    MS_IDS,
    MS_VI_IDS,
    realize,
)
from repro.parallel.backends import make_executor
from repro.perf.advisor import (
    REGRET_BOUND,
    advise,
    advise_format,
    extract_features,
    measure_calibration,
    record_realized,
)
from repro.perf.advisor.model import ADVISOR_FORMATS, ADVISOR_KERNELS
from repro.util.hostinfo import host_fingerprint
from repro.util.timing import measure


def corpus(smoke: bool) -> tuple[int, ...]:
    """Catalog ids: both size classes, both value distributions.

    Full mode spreads ~10 matrices over MS / ML / MS_vi / ML_vi so the
    advisor faces cases where each format should win; smoke keeps one
    per interesting class.
    """

    def subset(ids, limit):
        step = max(1, len(ids) // limit)
        return tuple(ids[::step][:limit])

    if smoke:
        return tuple(sorted({MS_IDS[0], MS_VI_IDS[0], ML_VI_IDS[0]}))
    picks = (
        subset(MS_IDS, 3)
        + subset(ML_IDS, 2)
        + subset(MS_VI_IDS, 3)
        + subset(ML_VI_IDS, 2)
    )
    return tuple(sorted(set(picks)))


def oracle_sweep(
    matrix, x: np.ndarray, *, calls: int, repeats: int
) -> dict[str, float]:
    """Measured per-call seconds for every candidate (format, tier)."""
    measured: dict[str, float] = {}
    for fmt in ADVISOR_FORMATS:
        conv = convert(matrix, fmt)
        for tier in ADVISOR_KERNELS:
            kernel = get_kernel(fmt, tier)
            kernel(conv, x)  # warm: caches, lazy buffers
            seconds = measure(
                lambda: kernel(conv, x), calls=calls, repeats=repeats
            ).per_call
            measured[f"{fmt}|{tier}|t1|thread"] = seconds
    return measured


def check_auto_bit_identity(matrix) -> tuple[bool, str]:
    """``format_name="auto"`` must equal the explicit pick bit for bit."""
    x = np.random.default_rng(11).standard_normal(matrix.ncols)
    picked = advise_format(matrix, threads=1, backend="thread")
    with make_executor(matrix, 1, format_name="auto") as auto_exec:
        y_auto = auto_exec(x)
    with make_executor(matrix, 1, format_name=picked) as explicit_exec:
        y_explicit = explicit_exec(x)
    return bool(np.array_equal(y_auto, y_explicit)), picked


def run_corpus(
    ids: tuple[int, ...], *, scale: float, calls: int, repeats: int, cal
) -> list[dict]:
    rows: list[dict] = []
    for mid in ids:
        matrix = realize(mid, scale=scale)
        features = extract_features(matrix)
        x = np.random.default_rng(mid).standard_normal(matrix.ncols)
        choice = advise(
            features, matrix_id=mid, clock="real", calibration=cal
        )
        best = choice.best
        picked_key = (
            f"{best.config.format_name}|{best.config.kernel}"
            f"|t{best.config.threads}|{best.config.backend}"
        )
        measured = oracle_sweep(matrix, x, calls=calls, repeats=repeats)
        oracle_key = min(measured, key=measured.get)
        oracle_s = measured[oracle_key]
        picked_s = measured[picked_key]
        record_realized(choice, picked_s, matrix_id=mid)
        top3 = {
            f"{p.config.format_name}|{p.config.kernel}"
            f"|t{p.config.threads}|{p.config.backend}"
            for p in choice.top(3)
        }
        rows.append(
            {
                "matrix": f"cat{mid:02d}",
                "matrix_id": mid,
                "nnz": int(matrix.nnz),
                "nrows": int(matrix.nrows),
                "predicted": picked_key,
                "predicted_s": best.seconds,
                "measured_s": picked_s,
                "oracle": oracle_key,
                "oracle_s": oracle_s,
                "regret": picked_s / oracle_s,
                "prediction_error": (best.seconds - picked_s) / picked_s,
                "top1_hit": picked_key == oracle_key,
                "top3_hit": oracle_key in top3,
                "source": best.source,
            }
        )
        r = rows[-1]
        print(
            f"cat{mid:02d} nnz={r['nnz']:>8}  pick={picked_key:<28} "
            f"oracle={oracle_key:<28} regret={r['regret']:.3f} "
            f"err={r['prediction_error']:+.1%}"
        )
    return rows


def summarize(rows: list[dict], bit_identical: bool) -> dict:
    regrets = [r["regret"] for r in rows]
    return {
        "nmatrices": len(rows),
        "geomean_regret": math.exp(
            sum(math.log(r) for r in regrets) / len(regrets)
        ),
        "max_regret": max(regrets),
        "top1_rate": sum(r["top1_hit"] for r in rows) / len(rows),
        "top3_rate": sum(r["top3_hit"] for r in rows) / len(rows),
        "bit_identical": bit_identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=str, default="BENCH_advisor.json", help="output JSON path"
    )
    parser.add_argument(
        "--scale", type=float, default=0.0625, help="catalog working-set scale"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="3 matrices, tiny scale, one call per cell, no JSON (CI)",
    )
    args = parser.parse_args(argv)

    scale = 0.03125 if args.smoke else args.scale
    calls, repeats = (1, 1) if args.smoke else (4, 2)

    prev = telemetry.set_collector(telemetry.Collector())
    try:
        if args.smoke:
            cal = measure_calibration(probe_size=4_000, calls=2, repeats=1)
        else:
            cal = measure_calibration()
        print(f"calibration {cal.calibration_id} on {cal.host.get('cpus')} cpu(s)")
        ids = corpus(args.smoke)
        rows = run_corpus(
            ids, scale=scale, calls=calls, repeats=repeats, cal=cal
        )
        bit_identical, auto_pick = check_auto_bit_identity(
            realize(ids[0], scale=scale)
        )
        picks = [
            ev
            for ev in telemetry.get_collector().snapshot()
            if ev.name == "advisor.pick"
        ]
    finally:
        telemetry.set_collector(prev)

    summary = summarize(rows, bit_identical)
    # One advise + one realized event per matrix, plus the bit-identity
    # check's internal advise calls.
    events_ok = len(picks) >= 2 * len(rows)
    print(
        f"\ngeomean regret {summary['geomean_regret']:.3f}x "
        f"(bound {REGRET_BOUND}x), top-1 {summary['top1_rate']:.0%}, "
        f"top-3 {summary['top3_rate']:.0%}, auto({auto_pick}) "
        f"bit-identical={bit_identical}, {len(picks)} advisor.pick events"
    )

    problems = []
    if summary["geomean_regret"] > REGRET_BOUND:
        problems.append(
            f"geomean regret {summary['geomean_regret']:.3f} exceeds the "
            f"documented bound {REGRET_BOUND}"
        )
    if not bit_identical:
        problems.append("--format auto y diverged from the explicit pick")
    if not events_ok:
        problems.append(
            f"expected >= {2 * len(rows)} advisor.pick events, saw {len(picks)}"
        )
    for p in problems:
        print(f"FAIL: {p}", file=sys.stderr)
    if args.smoke:
        print(f"smoke: {len(rows)} matrices, {len(problems)} problems")
        return 1 if problems else 0

    cells: dict[str, dict] = {
        f"{r['matrix']}|regret": {
            "regret": r["regret"],
            "advisor_s": r["measured_s"],
            "oracle_s": r["oracle_s"],
        }
        for r in rows
    }
    cells["summary|regret"] = {
        "geomean_regret": summary["geomean_regret"],
        "max_regret": summary["max_regret"],
        "top1_rate": summary["top1_rate"],
        "top3_rate": summary["top3_rate"],
    }
    payload = {
        "benchmark": "advisor pick vs exhaustive oracle (real wall-clock)",
        "host": host_fingerprint(calibration_id=cal.calibration_id),
        "scale": scale,
        "regret_bound": REGRET_BOUND,
        "note": (
            "regret = advisor-picked measured seconds / oracle-best "
            "measured seconds over the full candidate sweep; geometric "
            "mean must stay under regret_bound"
        ),
        "results": rows,
        "summary": summary,
        # perf_gate-compatible shape: flatten_run() reads experiments.*
        "experiments": {"advisor": {"cells": cells}},
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
