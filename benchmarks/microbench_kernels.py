"""Unitwise vs width-class-batched CSR-DU kernel microbenchmark.

Times :func:`repro.kernels.vectorized.spmv_csr_du_unitwise` (the
O(#units) Python decode loop) against
:func:`repro.kernels.batched.spmv_csr_du_batched` (the plan-cached
O(#width-classes) decode) on synthetic matrices, checks the two results
are *bit-identical*, and records MFLOPS plus the speedup in
``BENCH_kernels.json``.

This is a plain script, deliberately named so pytest does not collect
it (the suite collects ``test_*.py`` / ``bench_*.py`` only): one run
takes tens of seconds because the unitwise kernel really is that slow
on a million-nonzero matrix -- which is the point being measured.

Run:  PYTHONPATH=src python benchmarks/microbench_kernels.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.formats.csr_du import CSRDUMatrix
from repro.kernels.batched import spmv_csr_du_batched
from repro.kernels.plan import get_plan
from repro.kernels.vectorized import spmv_csr_du_unitwise
from repro.matrices.generators import banded_random, stencil_2d
from repro.util.timing import measure

#: (name, COO builder).  The first entry is the headline >= 1M-nnz case.
CASES = (
    ("stencil2d-512x512-5pt", lambda: stencil_2d(512, 512, points=5)),
    ("stencil2d-160x160-9pt", lambda: stencil_2d(160, 160, points=9)),
    ("banded-100k-bw16", lambda: banded_random(100_000, 16, 8, seed=3)),
)


def bench_case(name: str, build, policy: str = "greedy") -> dict:
    coo = build()
    csr = CSRMatrix.from_coo(coo)
    du = CSRDUMatrix.from_csr(csr, policy=policy)
    rng = np.random.default_rng(0)
    x = rng.random(du.ncols)

    get_plan(du)  # build outside the timed region, as an iterative caller would
    y_batched = spmv_csr_du_batched(du, x)
    y_unitwise = spmv_csr_du_unitwise(du, x)
    bit_identical = bool(np.array_equal(y_unitwise, y_batched))

    # The unitwise kernel is interpreter-bound (hundreds of ms per call
    # at 1M nnz), so few calls suffice; the batched kernel gets more.
    m_unit = measure(lambda: spmv_csr_du_unitwise(du, x), calls=3, repeats=2)
    m_batched = measure(lambda: spmv_csr_du_batched(du, x), calls=20, repeats=3)
    flop = 2 * du.nnz
    result = {
        "name": name,
        "policy": policy,
        "nrows": du.nrows,
        "ncols": du.ncols,
        "nnz": du.nnz,
        "nunits": int(get_plan(du).table.nunits),
        "mean_unit_size": du.mean_unit_size(),
        "unitwise_s": m_unit.per_call,
        "batched_s": m_batched.per_call,
        "unitwise_mflops": flop / m_unit.per_call / 1e6,
        "batched_mflops": flop / m_batched.per_call / 1e6,
        "speedup": m_unit.per_call / m_batched.per_call,
        "bit_identical": bit_identical,
    }
    print(
        f"{name:<24} nnz={du.nnz:>9} "
        f"unitwise={result['unitwise_mflops']:8.2f} MFLOPS  "
        f"batched={result['batched_mflops']:8.2f} MFLOPS  "
        f"speedup={result['speedup']:6.1f}x  "
        f"bit-identical={bit_identical}"
    )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=str, default="BENCH_kernels.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    results = [bench_case(name, build) for name, build in CASES]
    payload = {
        "benchmark": "csr-du unitwise vs width-class batched SpMV",
        "kernels": {
            "unitwise": "repro.kernels.vectorized.spmv_csr_du_unitwise",
            "batched": "repro.kernels.batched.spmv_csr_du_batched",
        },
        "note": (
            "serial wall-clock on the development container; relative "
            "numbers are the claim, absolute MFLOPS are host-specific"
        ),
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    ok = all(r["bit_identical"] for r in results)
    headline = max(results, key=lambda r: r["nnz"])
    if headline["nnz"] >= 1_000_000 and headline["speedup"] < 5.0:
        print("FAIL: headline speedup below 5x", file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
