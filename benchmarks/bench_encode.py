"""Encoding throughput benchmarks.

Section IV/V claim both compressions are ``O(nnz)`` single-pass
constructions with "no overhead in terms of time complexity compared to
CSR".  These benchmarks time the actual converters and check linear
scaling empirically.
"""

from __future__ import annotations

import pytest

from repro.formats import CSRDUMatrix, CSRVIMatrix, DCSRMatrix
from repro.formats.conversions import to_csr
from repro.matrices.collection import realize
from repro.util.timing import measure


@pytest.fixture(scope="module")
def csr():
    return to_csr(realize(55, scale=1 / 64))


def test_encode_csr_du(benchmark, csr):
    du = benchmark(lambda: CSRDUMatrix.from_csr(csr))
    assert du.nnz == csr.nnz


def test_encode_csr_vi(benchmark, csr):
    vi = benchmark(lambda: CSRVIMatrix.from_csr(csr))
    assert vi.nnz == csr.nnz


def test_encode_dcsr(benchmark, csr):
    dcsr = benchmark(lambda: DCSRMatrix.from_csr(csr))
    assert dcsr.nnz == csr.nnz


def test_du_decode_structure(benchmark, csr):
    """One-time structural decode cost (amortized across iterations)."""
    du = CSRDUMatrix.from_csr(csr)

    def decode():
        fresh = CSRDUMatrix(du.nrows, du.ncols, du.ctl, du.values)
        return fresh.units

    units = benchmark(decode)
    assert units.nunits > 0


def test_encoding_scales_linearly():
    """O(nnz) check: 4x the matrix, at most ~7x the encode time
    (generous bound; constants wobble at small sizes)."""
    small = to_csr(realize(55, scale=1 / 256))
    large = to_csr(realize(55, scale=1 / 64))
    t_small = measure(lambda: CSRDUMatrix.from_csr(small), calls=3, repeats=2)
    t_large = measure(lambda: CSRDUMatrix.from_csr(large), calls=3, repeats=2)
    size_ratio = large.nnz / small.nnz
    time_ratio = t_large.per_call / t_small.per_call
    assert time_ratio < size_ratio * 2.0
