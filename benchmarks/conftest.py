"""Shared benchmark configuration.

Benchmarks run the paper's experiments at ``BENCH_SCALE`` (matrices and
machine caches shrunk together, preserving every matrix's MS/ML class
-- see DESIGN.md), with ``BENCH_LIMIT`` matrices per set so the whole
suite stays in CI territory.  The full-size runs are one command away:

    python -m repro.bench all --scale 1.0

Each table/figure benchmark prints the regenerated table (with the
paper's published numbers interleaved) so `pytest benchmarks/
--benchmark-only -s` doubles as the reproduction report.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentConfig

#: 1/32 of the paper's working-set sizes; ML stays memory bound, MS
#: stays cacheable, because the machine model's caches shrink too.
BENCH_SCALE = 1 / 32

#: Matrices per set (MS / ML / *_vi) in the reduced runs.
BENCH_LIMIT = 6


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def fast_config() -> ExperimentConfig:
    """Even smaller, for per-matrix micro benchmarks."""
    return ExperimentConfig(scale=1 / 64)
