"""EXP-T2 -- regenerate Table II (CSR serial MFLOPS + speedups).

Run with::

    pytest benchmarks/bench_table2.py --benchmark-only -s
"""

from __future__ import annotations

from repro.bench.experiments import table2
from repro.bench.report import format_table2

from conftest import BENCH_LIMIT


def test_table2_regeneration(benchmark, bench_config):
    """Times the full Table II pipeline and prints the table."""
    result = benchmark.pedantic(
        lambda: table2(bench_config, limit=BENCH_LIMIT), rounds=1, iterations=1
    )
    print()
    print(format_table2(result))

    # Reproduction gates (shape, not absolute numbers):
    # serial CSR in the paper's few-hundred-MFLOPS band,
    serial_m0 = result.serial_mflops["M0"][0]
    assert 250 < serial_m0 < 1100
    # cacheable matrices scale much better than memory-bound ones,
    sp8 = result.speedups[(8, "close")]
    assert sp8["MS"][0] > 1.5 * sp8["ML"][0]
    # memory-bound 8-thread scaling sits near the paper's ~2.1x,
    assert 1.2 < sp8["ML"][0] < 3.2
    # and separate-L2 beats shared-L2 at 2 threads on average.
    assert (
        result.speedups[(2, "spread")]["MS"][0]
        > result.speedups[(2, "close")]["MS"][0]
    )
