"""Solver-level benchmarks: the paper's end-user scenario.

CG spends essentially all its time in SpMV, so a compressed format's
kernel benefit carries straight through to solver wall-clock -- this is
the "iterative solvers" motivation of Section I made measurable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import convert
from repro.formats.conversions import to_csr
from repro.matrices.generators import stencil_2d
from repro.matrices.values import set_matrix_values
from repro.solvers import conjugate_gradient


@pytest.fixture(scope="module")
def system():
    pattern = to_csr(stencil_2d(40, 40))
    rows = pattern.row_of_entry()
    vals = np.where(rows == pattern.col_ind, 5.0, -1.0)
    A = set_matrix_values(pattern, vals)
    rng = np.random.default_rng(0)
    x_true = rng.random(A.ncols)
    return A, A.spmv(x_true), x_true


@pytest.mark.parametrize("fmt", ["csr", "csr-du", "csr-vi", "csr-du-vi"])
def test_cg_with_format(benchmark, system, fmt):
    A, b, x_true = system
    converted = convert(A, fmt)
    if hasattr(converted, "units"):
        converted.units  # structural decode amortizes, as in deployment

    res = benchmark(lambda: conjugate_gradient(converted, b, tol=1e-8))
    assert res.converged
    assert np.allclose(res.x, x_true, atol=1e-5)


def test_cg_iteration_count_format_independent(system):
    """Compression is numerically transparent: identical iterates."""
    A, b, _ = system
    counts = {
        fmt: conjugate_gradient(convert(A, fmt), b, tol=1e-8).iterations
        for fmt in ("csr", "csr-du", "csr-vi")
    }
    assert len(set(counts.values())) == 1
