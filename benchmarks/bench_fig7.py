"""EXP-F7 -- regenerate Figure 7 (per-matrix CSR-DU detail).

The paper's figure plots, for every M0 matrix, the CSR-DU speedup over
*serial CSR* at 1/2/4/8 threads (bars), the plain CSR multithreaded
speedup (black squares), and the matrix size reduction (text); matrices
sorted by speedup.  This benchmark prints the same series as a table.
"""

from __future__ import annotations

from repro.bench.experiments import fig7
from repro.bench.report import format_fig_series

from conftest import BENCH_LIMIT


def test_fig7_regeneration(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: fig7(bench_config, limit=2 * BENCH_LIMIT), rounds=1, iterations=1
    )
    print()
    print(format_fig_series(result))

    series = result.series
    assert len(series) == 2 * BENCH_LIMIT
    # Size reductions sit in the paper's plotted band (roughly 5-35%
    # of total matrix bytes for index compression).
    assert all(-0.05 < s.size_reduction < 0.45 for s in series)
    # For most matrices the 8-thread CSR-DU bar clears the CSR square
    # (Fig. 7's visual message).
    wins = sum(
        1 for s in series if s.compressed_speedups[8] >= s.csr_speedups[8] * 0.98
    )
    assert wins >= len(series) * 0.6
    # Bars grow with threads for the top half (memory-bound matrices).
    top = series[len(series) // 2 :]
    assert all(s.compressed_speedups[8] >= s.compressed_speedups[1] for s in top)
