"""Section VII's forward-looking claim, tested on the machine model.

"...as the number of processing elements that share the memory
subsystem increases, this tradeoff will become more beneficial for the
performance of memory bound applications such as SpMxV."

With cores-per-die growing behind a fixed memory controller, plain CSR
saturates the bus and stops scaling; the compressed formats hold their
full byte-ratio advantage -- so every core added past saturation is a
core only the compressed kernels can exploit.
"""

from __future__ import annotations

from repro.bench.experiments import future_core_scaling


def test_section7_claim(benchmark, bench_config):
    points = benchmark.pedantic(
        lambda: future_core_scaling(bench_config), rounds=1, iterations=1
    )
    print("\ncores x format -> speedup vs CSR (same cores)")
    cores = sorted({p.cores for p in points})
    for mid in sorted({p.matrix_id for p in points}):
        for fmt in ("csr-du", "csr-vi"):
            row = [
                next(
                    p
                    for p in points
                    if p.matrix_id == mid and p.cores == c and p.format_name == fmt
                )
                for c in cores
            ]
            print(
                f"  id={mid} {fmt:8s} "
                + " ".join(f"{p.cores:>3d}c:{p.speedup_vs_csr:5.2f}" for p in row)
            )
            # (a) the advantage never drops to parity at any core count;
            assert all(p.speedup_vs_csr > 1.0 for p in row)
            # (b) it is sustained as cores grow past saturation --
            # partially eroded by intra-die cache contention (8 threads
            # now share each L2), but still well above parity;
            by_cores = {p.cores: p.speedup_vs_csr for p in row}
            assert by_cores[32] >= 0.80 * by_cores[8]
            assert by_cores[32] > 1.05
    # (c) plain CSR itself has stopped scaling: the extra cores are
    # useful *only* through working-set reduction.
    for mid in sorted({p.matrix_id for p in points}):
        t8 = next(
            p.csr_time_s for p in points if p.matrix_id == mid and p.cores == 8
        )
        t32 = next(
            p.csr_time_s for p in points if p.matrix_id == mid and p.cores == 32
        )
        assert t32 > 0.8 * t8  # 4x the cores, <1.25x the speed
