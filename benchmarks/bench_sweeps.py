"""Sensitivity sweeps as benchmarks: the crossover curves behind the
paper's argument (compression pays because bandwidth is scarce)."""

from __future__ import annotations

from repro.bench.sweep import bandwidth_sweep, cache_sweep, format_sweep_table
from repro.matrices.collection import realize

from conftest import BENCH_SCALE


def test_bandwidth_crossover(benchmark, bench_config):
    """Scale the memory system: compression's win must shrink as
    bandwidth grows and vanish when compute binds."""
    matrix = realize(69, scale=BENCH_SCALE)
    machine = bench_config.scaled_machine()
    points = benchmark.pedantic(
        lambda: bandwidth_sweep(
            matrix, factors=(0.25, 1.0, 4.0, 16.0, 64.0), machine=machine
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_sweep_table(points))
    by = {(p.knob_value, p.format_name): p.time_s for p in points}
    gains = [
        by[(f, "csr")] / by[(f, "csr-vi")] for f in (0.25, 1.0, 4.0, 16.0, 64.0)
    ]
    # Monotone non-increasing advantage.
    assert all(b <= a + 1e-9 for a, b in zip(gains, gains[1:]))
    assert gains[0] > 1.2 and gains[-1] < 1.05


def test_cache_regime_boundary(benchmark, bench_config):
    """Scale L2: an ML matrix turns into an MS matrix (the 4xL2 + 1 MB
    boundary of Section VI-B, observed rather than postulated)."""
    matrix = realize(69, scale=BENCH_SCALE)
    machine = bench_config.scaled_machine()
    points = benchmark.pedantic(
        lambda: cache_sweep(
            matrix, factors=(0.25, 1.0, 4.0, 16.0, 64.0), machine=machine
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_sweep_table(points))
    ordered = sorted(points, key=lambda p: p.knob_value)
    times = [p.time_s for p in ordered]
    assert all(b <= a + 1e-15 for a, b in zip(times, times[1:]))
    # The largest cache ends compute/L2-bound, not DRAM-bound.
    assert ordered[-1].bound in ("compute", "core-bw", "l2-bw")
    assert ordered[0].bound in ("mem", "fsb", "die-bw", "core-bw")
