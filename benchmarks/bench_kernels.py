"""Real-clock kernel micro-benchmarks (serial, this host).

These time the actual NumPy kernels -- the honest wall-clock layer of
the reproduction.  Absolute numbers reflect this container, not the
paper's Clovertown; they exist to (a) exercise pytest-benchmark on real
code paths and (b) sanity-check that the *relative compute cost*
ordering assumed by the cost model (CSR < CSR-VI < CSR-DU-unitwise) is
real.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import convert
from repro.kernels.vectorized import (
    spmv_csr_du_unitwise,
    spmv_csr_vectorized,
    spmv_csr_vi_vectorized,
)
from repro.matrices.collection import realize

SCALE = 1 / 64
MATRIX_ID = 69  # ML_vi member: big enough to be interesting


@pytest.fixture(scope="module")
def matrix():
    return realize(MATRIX_ID, scale=SCALE)


@pytest.fixture(scope="module")
def x(matrix):
    return np.random.default_rng(0).random(matrix.ncols)


def test_spmv_csr(benchmark, matrix, x):
    csr = convert(matrix, "csr")
    y = benchmark(lambda: spmv_csr_vectorized(csr, x))
    assert y.shape == (matrix.nrows,)


def test_spmv_csr_vi(benchmark, matrix, x):
    vi = convert(matrix, "csr-vi")
    y = benchmark(lambda: spmv_csr_vi_vectorized(vi, x))
    assert np.allclose(y, matrix.spmv(x))


def test_spmv_csr_du_cached(benchmark, matrix, x):
    du = convert(matrix, "csr-du")
    du.units  # prime the structural decode, as an iterative solver would
    y = benchmark(lambda: du.spmv(x))
    assert np.allclose(y, matrix.spmv(x))


def test_spmv_csr_du_unitwise(benchmark, matrix, x):
    """True decode-on-the-fly: the compute/traffic tradeoff made flesh."""
    du = convert(matrix, "csr-du")
    y = benchmark(lambda: spmv_csr_du_unitwise(du, x))
    assert np.allclose(y, matrix.spmv(x))


def test_spmv_csr_du_vi(benchmark, matrix, x):
    duvi = convert(matrix, "csr-du-vi")
    duvi.units
    y = benchmark(lambda: duvi.spmv(x))
    assert np.allclose(y, matrix.spmv(x))


def test_spmv_bcsr(benchmark, matrix, x):
    bcsr = convert(matrix, "bcsr", r=2, c=2)
    y = benchmark(lambda: bcsr.spmv(x))
    assert np.allclose(y, matrix.spmv(x))
