"""EXP-F8 -- regenerate Figure 8 (per-matrix CSR-VI detail over M0_vi)."""

from __future__ import annotations

from repro.bench.experiments import fig8
from repro.bench.report import format_fig_series

from conftest import BENCH_LIMIT


def test_fig8_regeneration(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: fig8(bench_config, limit=2 * BENCH_LIMIT), rounds=1, iterations=1
    )
    print()
    print(format_fig_series(result))

    series = result.series
    # ttu > 5 guarantees genuine value compression for every member.
    assert all(s.size_reduction > 0.15 for s in series)
    # The flagship matrices reach the paper's 2x-and-beyond bars.
    best = series[-1]
    assert best.compressed_speedups[8] > 1.5 * best.csr_speedups[1]
    # And CSR-VI's 8-thread bar beats the CSR square for the
    # memory-bound majority.
    wins = sum(
        1 for s in series if s.compressed_speedups[8] >= s.csr_speedups[8] * 0.98
    )
    assert wins >= len(series) * 0.6
