"""ABL-1..5 -- the design-choice ablations from DESIGN.md section 5.

Each prints its comparison rows; the assertions encode the expected
orderings (which design choice wins, and where it stops winning).
"""

from __future__ import annotations

from repro.bench.experiments import (
    ablation_dcsr,
    ablation_du_vi,
    ablation_index_width,
    ablation_placement,
    ablation_seq_units,
    ablation_unit_policy,
)


def _print_rows(title, rows):
    print(f"\n{title}")
    print(f"{'id':>4} {'variant':<16} {'idx bytes':>10} {'total':>10} "
          f"{'t(1)':>11} {'t(8)':>11}")
    for r in rows:
        print(
            f"{r.matrix_id:>4} {r.label:<16} {r.index_bytes:>10} "
            f"{r.total_bytes:>10} {r.time_1t:>11.4e} {r.time_8t:>11.4e}"
        )


def test_ablation_unit_policy(benchmark, bench_config):
    """ABL-1: greedy unit splitting vs strict class alignment."""
    rows = benchmark.pedantic(
        lambda: ablation_unit_policy(bench_config), rounds=1, iterations=1
    )
    _print_rows("ABL-1 unit policy", rows)
    by_key = {(r.matrix_id, r.label): r for r in rows}
    for mid in {r.matrix_id for r in rows}:
        greedy = by_key[(mid, "csr-du/greedy")]
        aligned = by_key[(mid, "csr-du/aligned")]
        # Greedy's first-delta stealing never loses bytes.
        assert greedy.index_bytes <= aligned.index_bytes


def test_ablation_dcsr(benchmark, bench_config):
    """ABL-2: DCSR compresses comparably; CSR-DU's coarse dispatch wins
    on pattern-diverse matrices (Section III-B)."""
    rows = benchmark.pedantic(
        lambda: ablation_dcsr(bench_config, ids=(55, 69, 84)),
        rounds=1,
        iterations=1,
    )
    _print_rows("ABL-2 DCSR vs CSR-DU", rows)
    by_key = {(r.matrix_id, r.label): r for r in rows}
    for mid in (55, 69, 84):
        assert by_key[(mid, "dcsr")].index_bytes < by_key[(mid, "csr")].index_bytes
    # The diverse matrix (random family) pays the dispatch penalty.
    assert by_key[(69, "dcsr")].time_1t >= by_key[(69, "csr-du")].time_1t


def test_ablation_index_width(benchmark, bench_config):
    """ABL-3: the 16-bit index trick of Williams et al. [11]."""
    rows = benchmark.pedantic(
        lambda: ablation_index_width(bench_config), rounds=1, iterations=1
    )
    _print_rows("ABL-3 index width", rows)
    narrow = [r for r in rows if r.label == "csr/16-bit"]
    for r in narrow:
        wide = next(
            w for w in rows if w.matrix_id == r.matrix_id and w.label == "csr/32-bit"
        )
        assert r.index_bytes < wide.index_bytes
        assert r.time_8t <= wide.time_8t * 1.02  # less traffic never hurts


def test_ablation_placement(benchmark, bench_config):
    """ABL-4: close vs spread (Table II's 2 (1xL2) vs 2 (2xL2) row)."""
    out = benchmark.pedantic(
        lambda: ablation_placement(bench_config), rounds=1, iterations=1
    )
    print("\nABL-4 placement (seconds)")
    for (mid, threads, pol), t in sorted(out.items()):
        print(f"  id={mid} threads={threads} {pol:<7}: {t:.4e}")
    for mid in {k[0] for k in out}:
        assert out[(mid, 2, "spread")] <= out[(mid, 2, "close")] * 1.02


def test_ablation_du_vi(benchmark, bench_config):
    """ABL-5: CSR-DU-VI composes both reductions."""
    rows = benchmark.pedantic(
        lambda: ablation_du_vi(bench_config), rounds=1, iterations=1
    )
    _print_rows("ABL-5 combined format", rows)
    by_key = {(r.matrix_id, r.label): r for r in rows}
    for mid in {r.matrix_id for r in rows}:
        duvi = by_key[(mid, "csr-du-vi")]
        assert duvi.total_bytes < by_key[(mid, "csr-du")].total_bytes
        assert duvi.total_bytes < by_key[(mid, "csr-vi")].total_bytes
        # And the byte win shows up as time at 8 threads.
        assert duvi.time_8t <= by_key[(mid, "csr")].time_8t


def test_ablation_seq_units(benchmark, bench_config):
    """ABL-6: sequential units on dense-band matrices.

    The wider the band, the longer the constant-delta runs and the
    bigger the win over per-element u8 deltas."""
    rows = benchmark.pedantic(
        lambda: ablation_seq_units(bench_config), rounds=1, iterations=1
    )
    _print_rows("ABL-6 sequential units (id = half bandwidth)", rows)
    by_key = {(r.matrix_id, r.label): r for r in rows}
    ratios = {}
    for k in {r.matrix_id for r in rows}:
        greedy = by_key[(k, "csr-du/greedy")]
        seq = by_key[(k, "csr-du/seq")]
        assert seq.index_bytes < greedy.index_bytes
        assert seq.time_8t <= greedy.time_8t * 1.001
        ratios[k] = greedy.index_bytes / seq.index_bytes
    ks = sorted(ratios)
    assert ratios[ks[-1]] > ratios[ks[0]]  # wider band -> bigger win


def test_ablation_frequency(benchmark, bench_config):
    """ABL-7: the paper's Section VI-D down-clocking experiment.

    Serial compression gains must grow with core frequency (faster
    cores are more memory-bound, so trading cycles for bytes pays
    more) -- the paper's explanation for the Woodcrest/Clovertown
    serial discrepancy."""
    from repro.bench.experiments import ablation_frequency

    points = benchmark.pedantic(
        lambda: ablation_frequency(bench_config), rounds=1, iterations=1
    )
    print("\nABL-7 serial compressed-vs-CSR ratio by clock")
    print(f"{'id':>4} {'format':>8} " + " ".join(
        f"{g:>8.2f}GHz" for g in sorted({p.clock_ghz for p in points})
    ))
    clocks = sorted({p.clock_ghz for p in points})
    for mid in sorted({p.matrix_id for p in points}):
        for fmt in ("csr-du", "csr-vi"):
            ratios = [
                next(
                    p.serial_ratio_vs_csr
                    for p in points
                    if p.matrix_id == mid and p.format_name == fmt and p.clock_ghz == g
                )
                for g in clocks
            ]
            print(f"{mid:>4} {fmt:>8} " + " ".join(f"{r:>11.3f}" for r in ratios))
            # The paper's claim: the ratio grows with frequency.
            assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:]))


def test_ablation_rcm(benchmark, bench_config):
    """ABL-8: RCM reordering composes with CSR-DU.

    Restoring the band shrinks column deltas (better compression) and
    x locality (less gather traffic) at once."""
    from repro.bench.experiments import ablation_rcm

    rows = benchmark.pedantic(
        lambda: ablation_rcm(bench_config), rounds=1, iterations=1
    )
    _print_rows("ABL-8 RCM x CSR-DU (id = grid side)", rows)
    by_label = {r.label: r for r in rows}
    scrambled = by_label["csr-du/scrambled"]
    rcm = by_label["csr-du/rcm"]
    assert rcm.index_bytes < scrambled.index_bytes
    assert rcm.time_8t < scrambled.time_8t
