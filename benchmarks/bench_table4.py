"""EXP-T4 -- regenerate Table IV (CSR-VI vs CSR speedups, ttu > 5 sets)."""

from __future__ import annotations

from repro.bench.experiments import table3, table4
from repro.bench.report import format_speedup_table

from conftest import BENCH_LIMIT


def test_table4_regeneration(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: table4(bench_config, limit=BENCH_LIMIT), rounds=1, iterations=1
    )
    print()
    print(format_speedup_table(result))

    ml = {t: result.rows[t]["ML_vi"] for t in (1, 2, 4, 8)}
    ms = {t: result.rows[t]["MS_vi"] for t in (1, 2, 4, 8)}
    # Memory-bound high-ttu matrices gain strongly multithreaded
    # (paper: 1.36-1.59 average), serial near parity (paper: 1.12).
    assert 0.85 < ml[1][0] < 1.35
    for t in (2, 4, 8):
        assert ml[t][0] > 1.2
    # Cacheable matrices lose the benefit at 8 threads (paper: 1.02;
    # the working set fits, so byte reduction stops mattering).
    assert ms[8][0] < ms[2][0]
    # No significant ML_vi slowdowns at 8 threads (paper: 0).
    assert ml[8][3] == 0


def test_vi_beats_du_where_applicable(benchmark, bench_config):
    """The paper's cross-table observation: with 64-bit values and
    32-bit indices, value compression has more headroom (Section VII)."""
    def both():
        return (
            table3(bench_config, limit=BENCH_LIMIT),
            table4(bench_config, limit=BENCH_LIMIT),
        )

    du, vi = benchmark.pedantic(both, rounds=1, iterations=1)
    assert vi.rows[8]["ML_vi"][0] > du.rows[8]["ML"][0]
