"""Reference vs batched CSR-DU encode microbenchmark.

Times the per-unit reference pipeline (:func:`repro.compress.delta.
unitize` feeding :class:`repro.compress.ctl.CtlWriter`) against the
vectorized one-pass encoder (:func:`repro.compress.encode_batched.
encode_ctl_batched`) on the same stencil/banded set the kernel
microbenchmark uses, asserts the two ctl streams are *byte-identical*,
and records encode throughput plus the speedup in ``BENCH_encode.json``.

The JSON carries the cells under ``experiments.encode.cells`` -- the
exact shape :mod:`repro.bench.baseline` flattens -- so the perf gate
can track encode throughput directly::

    python tools/perf_gate.py BENCH_encode.json --history perf_history.json

``--smoke`` skips the timing (CI-friendly: seconds, not minutes) and
only sweeps bit-identity across policies, ``max_unit`` boundary values
and empty-row patterns on tiny matrices.

Run:  PYTHONPATH=src python benchmarks/microbench_encode.py [--out PATH] [--smoke]
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.compress.ctl import CtlWriter
from repro.compress.delta import unitize
from repro.compress.encode_batched import encode_ctl_batched
from repro.compress.unit_table import scan_units
from repro.formats.csr import CSRMatrix
from repro.matrices.generators import banded_random, stencil_2d
from repro.util.timing import measure

#: (name, COO builder).  Same set as microbench_kernels.py, so the two
#: BENCH files describe the same matrices end to end.
CASES = (
    ("stencil2d-512x512-5pt", lambda: stencil_2d(512, 512, points=5)),
    ("stencil2d-160x160-9pt", lambda: stencil_2d(160, 160, points=9)),
    ("banded-100k-bw16", lambda: banded_random(100_000, 16, 8, seed=3)),
)

#: The acceptance floor: batched must beat reference by this much on
#: every full-size case.
SPEEDUP_FLOOR = 20.0


def reference_encode(row_ptr: np.ndarray, col_ind: np.ndarray, policy: str,
                     max_unit: int = 255) -> bytes:
    writer = CtlWriter()
    for unit in unitize(row_ptr, col_ind, policy=policy, max_unit=max_unit):
        writer.append(unit)
    return writer.getvalue()


def bench_case(name: str, build, policy: str = "greedy") -> dict:
    coo = build()
    csr = CSRMatrix.from_coo(coo)
    row_ptr = csr.row_ptr.astype(np.int64)
    col_ind = csr.col_ind.astype(np.int64)

    ref_ctl = reference_encode(row_ptr, col_ind, policy)
    enc = encode_ctl_batched(row_ptr, col_ind, policy=policy)
    bit_identical = ref_ctl == enc.ctl
    scanned = scan_units(ref_ctl)
    table_identical = all(
        np.array_equal(getattr(scanned, f), getattr(enc.table, f))
        for f in ("flags", "sizes", "classes", "rows", "new_row", "seq",
                  "ujmps", "strides", "body_offsets", "ctl_offsets")
    )

    # The reference encoder is interpreter-bound (seconds per call at
    # 1M nnz), so few calls suffice; the batched encoder gets more.
    m_ref = measure(
        lambda: reference_encode(row_ptr, col_ind, policy), calls=2, repeats=2
    )
    m_bat = measure(
        lambda: encode_ctl_batched(row_ptr, col_ind, policy=policy),
        calls=10,
        repeats=3,
    )
    nnz = int(col_ind.size)
    result = {
        "name": name,
        "policy": policy,
        "nrows": int(csr.nrows),
        "ncols": int(csr.ncols),
        "nnz": nnz,
        "nunits": int(enc.table.nunits),
        "ctl_bytes": len(enc.ctl),
        "reference_s": m_ref.per_call,
        "batched_s": m_bat.per_call,
        "reference_mnnz_per_s": nnz / m_ref.per_call / 1e6,
        "batched_mnnz_per_s": nnz / m_bat.per_call / 1e6,
        "speedup": m_ref.per_call / m_bat.per_call,
        "bit_identical": bool(bit_identical),
        "table_identical": bool(table_identical),
    }
    print(
        f"{name:<24} nnz={nnz:>9} "
        f"reference={result['reference_mnnz_per_s']:7.2f} Mnnz/s  "
        f"batched={result['batched_mnnz_per_s']:7.2f} Mnnz/s  "
        f"speedup={result['speedup']:6.1f}x  "
        f"bit-identical={bit_identical}"
    )
    return result


def _smoke_matrices() -> list[tuple[str, np.ndarray, np.ndarray]]:
    """Tiny structures covering the encoder's decision points."""
    rng = np.random.default_rng(11)
    out = []
    coo = stencil_2d(12, 12, points=5)
    csr = CSRMatrix.from_coo(coo)
    out.append(("stencil", csr.row_ptr.astype(np.int64), csr.col_ind.astype(np.int64)))
    # Empty rows (RJMP path), including leading and trailing ones.
    out.append((
        "empty-rows",
        np.asarray([0, 0, 3, 3, 3, 7, 7], dtype=np.int64),
        np.asarray([1, 5, 260, 0, 2, 70000, 70001], dtype=np.int64),
    ))
    # Alternating width classes (greedy absorption blocks).
    deltas = np.asarray([3, 300, 2, 400, 1, 500, 9, 600, 4] * 3, dtype=np.int64)
    out.append((
        "alternating",
        np.asarray([0, deltas.size], dtype=np.int64),
        np.cumsum(deltas),
    ))
    # Constant-stride stretches (seq policy) plus random tails.
    cols = np.unique(
        np.concatenate([np.arange(0, 64, 2), rng.integers(100, 4000, 40)])
    ).astype(np.int64)
    out.append(("seq-runs", np.asarray([0, cols.size], dtype=np.int64), cols))
    return out


def smoke() -> int:
    """Bit-identity sweep only; returns the number of mismatches."""
    failures = 0
    checks = 0
    for name, row_ptr, col_ind in _smoke_matrices():
        for policy in ("greedy", "aligned", "seq"):
            for max_unit in (2, 3, 5, 254, 255):
                checks += 1
                ref = reference_encode(row_ptr, col_ind, policy, max_unit)
                enc = encode_ctl_batched(
                    row_ptr, col_ind, policy=policy, max_unit=max_unit
                )
                if ref != enc.ctl:
                    failures += 1
                    print(
                        f"SMOKE FAIL {name} policy={policy} max_unit={max_unit}: "
                        f"{len(ref)} vs {len(enc.ctl)} bytes",
                        file=sys.stderr,
                    )
    print(f"smoke: {checks} encode comparisons, {failures} mismatches")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=str, default="BENCH_encode.json", help="output JSON path"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="bit-identity sweep on tiny matrices only (no timing, no JSON)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return 1 if smoke() else 0

    results = [bench_case(name, build) for name, build in CASES]
    cells = {
        r["name"]: {
            "reference_mnnz_per_s": r["reference_mnnz_per_s"],
            "batched_mnnz_per_s": r["batched_mnnz_per_s"],
            "speedup": r["speedup"],
        }
        for r in results
    }
    payload = {
        "benchmark": "csr-du reference vs batched one-pass encode",
        "encoders": {
            "reference": "repro.compress.delta.unitize + ctl.CtlWriter",
            "batched": "repro.compress.encode_batched.encode_ctl_batched",
        },
        "note": (
            "serial wall-clock on the development container; relative "
            "numbers are the claim, absolute throughput is host-specific"
        ),
        "results": results,
        # perf_gate-compatible shape: flatten_run() reads experiments.*
        "experiments": {"encode": {"cells": cells}},
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    ok = all(r["bit_identical"] and r["table_identical"] for r in results)
    slow = [r for r in results if r["speedup"] < SPEEDUP_FLOOR]
    if slow:
        for r in slow:
            print(
                f"FAIL: {r['name']} speedup {r['speedup']:.1f}x below "
                f"{SPEEDUP_FLOOR:.0f}x floor",
                file=sys.stderr,
            )
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
