"""Thread vs process backend scaling, plus an out-of-core streamed run.

Part one sweeps ``repro.parallel.backends.make_executor`` over
``{csr, csr-du, csr-vi} x {thread, process} x {1, 2, 4}`` workers on a
stencil matrix, real wall-clock, and cross-checks every cell's ``y``
bit-exactly against the same-format thread run at the same shard count
(the only honest reference: csr-du's per-unit summation order differs
from CSR's row-dot order, so cross-format comparisons get ``allclose``
only).

Part two is the out-of-core demonstration on a matrix whose encoded
form exceeds an enforced byte budget: the in-RAM build
(``storage="mem"``, ``budget_bytes=...``) must fail with
:class:`~repro.errors.StorageError`, the ``mmap`` build of the *same*
matrix must pass (shards live on disk, resident bytes stay 0), and
:func:`~repro.storage.stream.streamed_spmv` must complete bit-identical
to the in-RAM product while the streaming working set (peak RSS delta
over the pre-stream baseline) stays under the budget.  A checkpoint
resume is exercised by rewinding ``progress.json`` to mid-run -- the
exact state a crash after shard ``k``'s checkpoint leaves behind.

Numbers are recorded as they measure.  On a single-CPU container the
process backend cannot win wall-clock (there is no second core to
scale onto and it pays IPC on top); the JSON carries ``host.cpus`` and
per-format ``process_beats_thread_best`` flags so consumers can judge
the curves in context instead of trusting a headline.

The JSON carries the cells under ``experiments.parallel.cells`` -- the
exact shape :mod:`repro.bench.baseline` flattens -- so the perf gate
can track backend scaling directly::

    python tools/perf_gate.py BENCH_parallel.json --history perf_history.json

``--smoke`` shrinks everything (2 workers, tiny matrices, one call per
cell, no JSON) for CI: it checks thread/process bit-identity and the
out-of-core fail/pass/stream/resume contract in seconds.

Run:  PYTHONPATH=src python benchmarks/microbench_parallel.py [--out PATH] [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

import numpy as np

from repro.errors import StorageError
from repro.formats.csr import CSRMatrix
from repro.matrices.generators import banded_random, stencil_2d
from repro.obs.resource import rss_bytes
from repro.parallel.backends import make_executor
from repro.storage import ShardStore, streamed_spmv
from repro.storage.stream import PROGRESS_NAME
from repro.util.timing import measure

FORMATS = ("csr", "csr-du", "csr-vi")
BACKENDS = ("thread", "process")
WORKERS = (1, 2, 4)

#: Shard count and byte budget for the out-of-core section.  The
#: banded matrix below stores ~20 MB as CSR, so an 8 MB budget is
#: genuinely smaller than the matrix while one ~1.2 MB shard plus the
#: vectors fits with room to spare.
OOC_NSHARDS = 16
OOC_BUDGET_BYTES = 8 * 1024 * 1024


def build_scaling_matrix(smoke: bool) -> tuple[str, CSRMatrix]:
    if smoke:
        return "stencil2d-24x24-5pt", CSRMatrix.from_coo(
            stencil_2d(24, 24, points=5)
        )
    return "stencil2d-256x256-5pt", CSRMatrix.from_coo(
        stencil_2d(256, 256, points=5)
    )


def bench_scaling(
    csr: CSRMatrix, *, smoke: bool
) -> tuple[list[dict], list[str]]:
    """One result row per (format, backend, workers) cell.

    Returns ``(rows, problems)``; a non-empty problem list fails the
    run.  Reference per (format, workers) is the thread backend at the
    same worker count -- identical shard boundaries, so the process
    backend must reproduce it bit for bit.
    """
    formats = FORMATS[:2] if smoke else FORMATS
    workers = (1, 2) if smoke else WORKERS
    x = np.random.default_rng(42).standard_normal(csr.ncols)
    y_close = csr.spmv(x)
    rows: list[dict] = []
    problems: list[str] = []
    base_seconds: dict[str, float] = {}
    thread_y: dict[tuple[str, int], np.ndarray] = {}
    for fmt in formats:
        for backend in BACKENDS:
            for nworkers in workers:
                executor = make_executor(
                    csr, nworkers, backend=backend, format_name=fmt
                )
                try:
                    y = executor(x)  # warm: encodes shards, forks workers
                    if smoke:
                        m_seconds = measure(
                            lambda: executor(x), calls=1, repeats=1
                        ).per_call
                    else:
                        m_seconds = measure(
                            lambda: executor(x), calls=5, repeats=3
                        ).per_call
                finally:
                    executor.close()
                cell = f"{fmt}|{backend}|{nworkers}w"
                if not np.allclose(y, y_close):
                    problems.append(f"{cell}: y diverged from CSR reference")
                if backend == "thread":
                    thread_y[(fmt, nworkers)] = y
                    base_seconds.setdefault(fmt, m_seconds)
                elif not np.array_equal(y, thread_y[(fmt, nworkers)]):
                    problems.append(
                        f"{cell}: not bit-identical to thread backend"
                    )
                rows.append(
                    {
                        "cell": cell,
                        "format": fmt,
                        "backend": backend,
                        "workers": nworkers,
                        "seconds": m_seconds,
                        "mnnz_per_s": csr.nnz / m_seconds / 1e6,
                        "speedup_vs_serial": base_seconds[fmt] / m_seconds,
                    }
                )
                print(
                    f"{cell:<20} {m_seconds:10.6f} s  "
                    f"{rows[-1]['mnnz_per_s']:8.2f} Mnnz/s  "
                    f"x{rows[-1]['speedup_vs_serial']:.2f} vs serial"
                )
    return rows, problems


def summarize_backends(rows: list[dict]) -> dict[str, dict]:
    """Per-format thread-best vs process-best comparison."""
    summary: dict[str, dict] = {}
    for fmt in {r["format"] for r in rows}:
        mine = [r for r in rows if r["format"] == fmt]
        thread_best = min(
            r["seconds"] for r in mine if r["backend"] == "thread"
        )
        process = [r for r in mine if r["backend"] == "process"]
        process_best = min(r["seconds"] for r in process)
        most = max(process, key=lambda r: r["workers"])
        summary[fmt] = {
            "thread_best_s": thread_best,
            "process_best_s": process_best,
            "process_best_speedup_vs_thread_best": thread_best / process_best,
            f"process_{most['workers']}w_speedup_vs_thread_best": (
                thread_best / most["seconds"]
            ),
            "process_beats_thread_best": process_best < thread_best,
        }
    return summary


def bench_out_of_core(*, smoke: bool) -> dict:
    """The fail-in-RAM / pass-out-of-core / stream / resume contract."""
    if smoke:
        csr = CSRMatrix.from_coo(banded_random(2_000, 8, 4, seed=7))
        nshards, budget = 4, 16 * 1024
    else:
        csr = CSRMatrix.from_coo(banded_random(220_000, 16, 8, seed=7))
        nshards, budget = OOC_NSHARDS, OOC_BUDGET_BYTES
    stored = int(csr.storage().total_bytes)
    if stored <= budget:
        raise AssertionError(
            f"out-of-core case is miscalibrated: matrix stores {stored} "
            f"bytes, not larger than the {budget}-byte budget"
        )
    x = np.random.default_rng(7).standard_normal(csr.ncols)
    y_ref = csr.spmv(x)

    mem_build_failed = False
    try:
        ShardStore.build(csr, "csr", nshards, storage="mem",
                         budget_bytes=budget).close()
    except StorageError as exc:
        mem_build_failed = True
        print(f"mem build at budget={budget}: refused as intended ({exc})")

    with tempfile.TemporaryDirectory(prefix="ooc-") as tmp:
        shard_dir = os.path.join(tmp, "shards")
        ckpt_dir = os.path.join(tmp, "ckpt")
        os.makedirs(shard_dir)
        store = ShardStore.build(
            csr, "csr", nshards, storage="mmap", directory=shard_dir,
            budget_bytes=budget,
        )
        try:
            rss_before, _ = rss_bytes()
            result = measure(
                lambda: streamed_spmv(store, x, checkpoint_dir=ckpt_dir),
                calls=1,
                repeats=1,
            )
            stream = streamed_spmv(store, x, checkpoint_dir=ckpt_dir)
            peak_delta = max(0, stream.peak_rss_bytes - rss_before)
            bit_identical = bool(np.array_equal(np.asarray(stream.y), y_ref))

            # Crash-after-shard-k state: rewind the progress record to
            # the halfway checkpoint and let the stream pick it up.
            progress_path = os.path.join(ckpt_dir, PROGRESS_NAME)
            with open(progress_path, "r", encoding="ascii") as fh:
                progress = json.load(fh)
            progress["shards_done"] = nshards // 2
            with open(progress_path, "w", encoding="ascii") as fh:
                json.dump(progress, fh)
            resumed = streamed_spmv(store, x, checkpoint_dir=ckpt_dir)
            resume_ok = (
                resumed.resumed_from == nshards // 2
                and resumed.shards_done == nshards - nshards // 2
                and bool(np.array_equal(np.asarray(resumed.y), y_ref))
            )
            del stream, resumed  # release the checkpoint memmaps
        finally:
            store.close()

    out = {
        "matrix": "banded-2k-bw8" if smoke else "banded-220k-bw16",
        "nrows": int(csr.nrows),
        "nnz": int(csr.nnz),
        "stored_bytes": stored,
        "budget_bytes": budget,
        "nshards": nshards,
        "mem_build_failed": mem_build_failed,
        "stream_s": result.per_call,
        "peak_rss_delta_bytes": int(peak_delta),
        "peak_rss_delta_below_budget": bool(peak_delta < budget),
        "bit_identical": bit_identical,
        "resume_ok": resume_ok,
    }
    print(
        f"out-of-core: stored={stored / 1e6:.1f} MB > "
        f"budget={budget / 1e6:.1f} MB, stream={out['stream_s']:.3f} s, "
        f"rss-delta={peak_delta / 1e6:.1f} MB, "
        f"bit-identical={bit_identical}, resume={resume_ok}"
    )
    return out


def out_of_core_problems(ooc: dict) -> list[str]:
    problems = []
    if not ooc["mem_build_failed"]:
        problems.append("mem build did not fail under the byte budget")
    if not ooc["bit_identical"]:
        problems.append("streamed y diverged from the in-RAM product")
    if not ooc["resume_ok"]:
        problems.append("checkpoint resume did not complete bit-identically")
    if not ooc["peak_rss_delta_below_budget"]:
        problems.append(
            f"streaming working set {ooc['peak_rss_delta_bytes']} B "
            f"exceeded the {ooc['budget_bytes']} B budget"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=str, default="BENCH_parallel.json", help="output JSON path"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny matrices, 2 workers, one call per cell, no JSON (CI)",
    )
    args = parser.parse_args(argv)

    _, csr = build_scaling_matrix(args.smoke)
    rows, problems = bench_scaling(csr, smoke=args.smoke)
    ooc = bench_out_of_core(smoke=args.smoke)
    problems += out_of_core_problems(ooc)
    for p in problems:
        print(f"FAIL: {p}", file=sys.stderr)
    if args.smoke:
        print(f"smoke: {len(rows)} cells, {len(problems)} problems")
        return 1 if problems else 0

    cells: dict[str, dict] = {
        r["cell"]: {
            "seconds": r["seconds"],
            "mnnz_per_s": r["mnnz_per_s"],
            "speedup_vs_serial": r["speedup_vs_serial"],
        }
        for r in rows
    }
    summary = summarize_backends(rows)
    for fmt, s in summary.items():
        cells[f"summary|{fmt}"] = {
            k: v for k, v in s.items() if isinstance(v, (int, float))
            and not isinstance(v, bool)
        }
    cells["out-of-core|stream"] = {
        "stored_bytes": ooc["stored_bytes"],
        "budget_bytes": ooc["budget_bytes"],
        "nshards": ooc["nshards"],
        "stream_s": ooc["stream_s"],
    }
    payload = {
        "benchmark": "thread vs process SpMV backends + out-of-core stream",
        "matrix": build_scaling_matrix(False)[0],
        "host": {"cpus": os.cpu_count() or 1},
        "note": (
            "real wall-clock on the development container; on a "
            "single-CPU host the process backend pays IPC with no "
            "second core to scale onto, so judge the backend columns "
            "against host.cpus"
        ),
        "results": rows,
        "summary": summary,
        "out_of_core": ooc,
        # perf_gate-compatible shape: flatten_run() reads experiments.*
        "experiments": {"parallel": {"cells": cells}},
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
