"""EXP-T3 -- regenerate Table III (CSR-DU vs CSR speedups)."""

from __future__ import annotations

from repro.bench.experiments import table3
from repro.bench.report import format_speedup_table

from conftest import BENCH_LIMIT


def test_table3_regeneration(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: table3(bench_config, limit=BENCH_LIMIT), rounds=1, iterations=1
    )
    print()
    print(format_speedup_table(result))

    # Reproduction gates (paper Table III shape):
    ml = {t: result.rows[t]["ML"] for t in (1, 2, 4, 8)}
    # serial roughly at parity (paper: 1.01),
    assert 0.85 < ml[1][0] < 1.25
    # multithreaded gains for memory-bound matrices (paper: 1.10-1.20),
    for t in (2, 4, 8):
        assert ml[t][0] > 1.05
    # the multithreaded gain exceeds the serial one,
    assert ml[8][0] > ml[1][0]
    # and no memory-bound matrix slows down significantly at 8 threads
    # (paper: the '< 0.98' count is 0 for ML at 4 and 8 threads).
    assert ml[8][3] == 0
